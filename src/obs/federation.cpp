#include "obs/federation.hpp"

#include <atomic>
#include <map>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "parallel/parallel_for.hpp"

namespace pdc::obs {

namespace {

/// Combines `from` into `into` under one key (kinds always match: the key
/// maps are segregated by kind).
void merge_into(MetricSample& into, const MetricSample& from) {
  switch (from.kind) {
    case MetricKind::kCounter:
      into.count += from.count;
      break;
    case MetricKind::kGauge:
      // Last write wins, in source input order (associative: combining
      // prefixes first still ends on the final source's value).
      into.value = from.value;
      into.high_water = from.high_water;
      break;
    case MetricKind::kHistogram:
      into.count += from.count;
      into.sum += from.sum;
      if (into.buckets.size() < from.buckets.size()) {
        into.buckets.resize(from.buckets.size(), 0);
      }
      for (std::size_t b = 0; b < from.buckets.size(); ++b) {
        into.buckets[b] += from.buckets[b];
      }
      break;
  }
}

using KeyedSamples = std::map<MetricKey, MetricSample, MetricKeyLess>;

void insert_or_merge(KeyedSamples& bucket, MetricKey key,
                     const MetricSample& sample) {
  auto it = bucket.find(key);
  if (it == bucket.end()) {
    bucket.emplace(std::move(key), sample);
  } else {
    merge_into(it->second, sample);
  }
}

}  // namespace

MetricsSnapshot merge_federated(const std::vector<SourceSnapshot>& sources,
                                std::string_view source_label) {
  // One sorted map per kind keeps the output in the snapshot's canonical
  // order (kind group, then base, then labels) — byte-stable however the
  // scrapes arrived.
  KeyedSamples merged[3];
  for (const auto& [source, snapshot] : sources) {
    for (const auto& s : snapshot.samples) {
      auto& bucket = merged[static_cast<std::size_t>(s.kind)];

      MetricKey stamped{s.base, s.labels};
      stamped.add_label_if_absent(source_label, source);
      const bool newly_stamped = stamped.labels.size() != s.labels.size();

      MetricSample per_source = s;
      per_source.labels = stamped.labels;
      per_source.name = stamped.canonical();
      insert_or_merge(bucket, std::move(stamped), per_source);

      // The aggregate series keeps the input's own key. When the input
      // already carried the source label (lower federation tier), the
      // stamped insert above *is* the aggregate — inserting again would
      // double-count.
      if (newly_stamped) {
        insert_or_merge(bucket, MetricKey{s.base, s.labels}, s);
      }
    }
  }
  MetricsSnapshot out;
  for (auto& bucket : merged) {
    for (auto& [key, sample] : bucket) {
      out.samples.push_back(std::move(sample));
    }
  }
  return out;
}

Aggregator::Aggregator(net::Network& net, int host, std::uint16_t port,
                       std::vector<ScrapeTarget> targets,
                       AggregatorConfig config)
    : net_(net),
      host_(host),
      targets_(std::move(targets)),
      config_(std::move(config)),
      pool_(config_.scrape_threads) {
  // Eager self-metric registration, same contract as TelemetryServer: the
  // first scrape of the process-wide registry already lists the full set.
  if constexpr (kObsEnabled) {
    auto& registry = MetricsRegistry::instance();
    registry.counter("pdc.fed.scrapes");
    registry.counter("pdc.fed.scrape_errors");
    registry.histogram("pdc.fed.scrape_us");
    registry.histogram("pdc.fed.merge_us");
    registry.gauge("pdc.fed.targets").add(
        static_cast<std::int64_t>(targets_.size()));
  }
  net::ServerConfig server_config;
  server_config.model = config_.model;
  server_config.workers = config_.workers;
  server_ = std::make_unique<net::Server>(
      net_, host_, port,
      [this](const net::Bytes& request) {
        return net::to_bytes(endpoint_body(net::to_string(request)));
      },
      server_config);
}

Aggregator::~Aggregator() { stop(); }

net::Address Aggregator::address() const { return server_->address(); }

void Aggregator::stop() { server_->stop(); }

support::Result<MetricsSnapshot> Aggregator::scrape_target(
    const ScrapeTarget& target) {
  net::Client client(net_, host_);
  if (auto status = client.connect(target.address); !status.is_ok()) {
    return status;
  }
  auto reply = client.call_text("/metrics.wire");
  client.close();
  if (!reply.is_ok()) return reply.status();
  auto snapshot = MetricsSnapshot::from_wire(reply.value());
  if (!snapshot) {
    return support::Status(support::StatusCode::kInvalidArgument,
                           "malformed /metrics.wire reply from source '" +
                               target.source + "'");
  }
  return *std::move(snapshot);
}

MetricsSnapshot Aggregator::federate() {
  std::vector<std::optional<MetricsSnapshot>> scraped(targets_.size());
  std::atomic<std::uint64_t> errors{0};
  parallel::fan_out(pool_, targets_.size(), [&](std::size_t i) {
    const std::uint64_t start = now_us();
    auto result = scrape_target(targets_[i]);
    PDC_OBS_HIST("pdc.fed.scrape_us", now_us() - start);
    if (result.is_ok()) {
      scraped[i] = std::move(result).value();
    } else {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Sources merge in target-declaration order (index-stable slots), not
  // completion order — part of the byte-stability contract.
  std::vector<SourceSnapshot> sources;
  sources.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (scraped[i].has_value()) {
      sources.push_back({targets_[i].source, std::move(*scraped[i])});
    }
  }
  const std::uint64_t merge_start = now_us();
  MetricsSnapshot merged = merge_federated(sources, config_.source_label);
  PDC_OBS_HIST("pdc.fed.merge_us", now_us() - merge_start);
  PDC_OBS_COUNT("pdc.fed.scrapes");
  const std::uint64_t failed = errors.load(std::memory_order_relaxed);
  if (failed != 0) PDC_OBS_COUNT("pdc.fed.scrape_errors", failed);
  return merged;
}

std::size_t Aggregator::broadcast_control(const std::string& verb) {
  std::atomic<std::size_t> acked{0};
  parallel::fan_out(pool_, targets_.size(), [&](std::size_t i) {
    net::Client client(net_, host_);
    if (!client.connect(targets_[i].address).is_ok()) return;
    auto reply = client.call_text(verb);
    client.close();
    if (reply.is_ok() && reply.value().rfind("error", 0) != 0) {
      acked.fetch_add(1, std::memory_order_relaxed);
    }
  });
  return acked.load(std::memory_order_relaxed);
}

std::string Aggregator::endpoint_body(const std::string& endpoint) {
  if (endpoint == "/healthz") return "ok\n";
  if (endpoint == "/metrics") return prometheus_exposition(federate());
  if (endpoint == "/metrics.json" || endpoint == "snapshot-now") {
    return federate().to_json();
  }
  if (endpoint == "/metrics.wire") return federate().to_wire();
  if (endpoint == "reset") {
    const std::size_t acked = broadcast_control("reset");
    if (acked == targets_.size()) return "ok\n";
    return "error: reset acked by " + std::to_string(acked) + "/" +
           std::to_string(targets_.size()) + " targets\n";
  }
  return "error: unknown endpoint '" + endpoint +
         "' (try /metrics, /metrics.json, /metrics.wire, /healthz, reset, "
         "snapshot-now)\n";
}

}  // namespace pdc::obs
