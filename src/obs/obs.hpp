// Umbrella header for pdc::obs plus the instrumentation macros the rest
// of the library uses on its hot paths.
//
// The macros cache the metric reference in a function-local static, so
// the registry's name lookup (a mutex + map walk) happens once per call
// site and every subsequent hit is a relaxed fetch_add on a sharded slot.
// Under PDCKIT_OBS_NOOP they expand to ((void)0) and the tracing inlines
// constant-fold away (see obs/trace.hpp), so instrumented code carries
// zero overhead when observability is compiled out.
#pragma once

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

#ifdef PDCKIT_OBS_NOOP

#define PDC_OBS_COUNT(name, ...) ((void)0)
#define PDC_OBS_GAUGE_ADD(name, delta) ((void)0)
#define PDC_OBS_GAUGE_SUB(name, delta) ((void)0)
#define PDC_OBS_HIST(name, value) ((void)0)

#else

#define PDC_OBS_COUNT(name, ...)                               \
  do {                                                         \
    static ::pdc::obs::Counter& pdc_obs_metric_ =              \
        ::pdc::obs::MetricsRegistry::instance().counter(name); \
    pdc_obs_metric_.inc(__VA_ARGS__);                          \
  } while (0)

#define PDC_OBS_GAUGE_ADD(name, delta)                       \
  do {                                                       \
    static ::pdc::obs::Gauge& pdc_obs_metric_ =              \
        ::pdc::obs::MetricsRegistry::instance().gauge(name); \
    pdc_obs_metric_.add(delta);                              \
  } while (0)

#define PDC_OBS_GAUGE_SUB(name, delta)                       \
  do {                                                       \
    static ::pdc::obs::Gauge& pdc_obs_metric_ =              \
        ::pdc::obs::MetricsRegistry::instance().gauge(name); \
    pdc_obs_metric_.sub(delta);                              \
  } while (0)

#define PDC_OBS_HIST(name, value)                                \
  do {                                                           \
    static ::pdc::obs::Histogram& pdc_obs_metric_ =              \
        ::pdc::obs::MetricsRegistry::instance().histogram(name); \
    pdc_obs_metric_.record(value);                               \
  } while (0)

#endif  // PDCKIT_OBS_NOOP

namespace pdc::obs {

/// Measures a blocking stretch in microseconds (virtual microseconds
/// under SimScheduler) and records it into a histogram. Construct just
/// before blocking, call record() after waking:
///
///   obs::BlockTimer timer;
///   testkit::wait(lock, not_full_, pred, "queue.push");
///   timer.record("pdc.queue.block_us");
class BlockTimer {
 public:
  BlockTimer() {
    if constexpr (kObsEnabled) start_us_ = now_us();
  }

  void record(const char* histogram_name) {
    if constexpr (kObsEnabled) {
      MetricsRegistry::instance().histogram(histogram_name).record(
          now_us() - start_us_);
    } else {
      (void)histogram_name;
    }
  }

 private:
  std::uint64_t start_us_ = 0;
};

}  // namespace pdc::obs
