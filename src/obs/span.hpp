// End-to-end request tracing: span trees, tail sampling, critical path.
//
// The trace rings in trace.hpp answer "what did this *thread* do"; this
// file answers "what happened to this *request*". Three pieces:
//
//  1. SpanContext / ActiveSpan — a 64-bit trace id plus a span id. The
//     client mints a root span per request (span_root), every hop opens a
//     child (span_begin) and closes it (span_end). Contexts travel in
//     net frames (MessageCodec reserves a 16-byte trace header, absent
//     when tracing is off) and on the widened WireTrace piggyback that
//     mp::Envelope / net::Datagram already carry, so one request's spans
//     share a trace id across LoadGen -> Server -> ReplicatedKV -> Raft.
//
//  2. SpanCollector — a per-process session (same lifecycle contract as
//     TraceCollector: one running at a time, start() resets all session
//     counters so fixed-seed sim runs are byte-stable). Completed span
//     trees go through *tail-based sampling*: a trace is kept when its
//     root latency beats the rotating threshold (the smallest root
//     latency currently kept, once the store is full) or when any span
//     carries an error tag; everything else is dropped with exact
//     accounting (pdc.span.sampled + pdc.span.dropped == pdc.span.finished).
//     Kept traces are annotated with their *critical path* — the longest
//     causal chain through the tree, with per-span self-time so "queued
//     in shard ready-list" vs "raft replication" vs "apply" attribution
//     falls out — and pinned as *exemplars* to the pdc.trace.root_us
//     histogram bucket their root latency landed in (/metrics.json).
//
//  3. Wire + JSON renderers — /trace/slowest?n=K and /trace/byid?id= on
//     TelemetryServer, plus a line-oriented wire form the Aggregator
//     federates with the established insert-if-absent source stamping.
//
// Span names must be string literals (stored by pointer at record time,
// copied only when a trace is kept — same contract as trace.hpp labels).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdc::obs {

/// Identity of one span inside one request trace. trace_id 0 means "not
/// tracing" — every operation taking a SpanContext treats that as a no-op,
/// so untraced requests pay nothing beyond the zero check.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// True while a SpanCollector session is running (always false under
/// PDCKIT_OBS_NOOP). Mirrors trace_enabled(); the two sessions are
/// independent — rings can run without spans and vice versa.
inline bool span_enabled() noexcept {
  return kObsEnabled && detail::g_span_enabled.load(std::memory_order_relaxed);
}

/// An open span. Move-only value (storable in pending-op structs across
/// asynchronous completion, e.g. ReplicatedKV::PendingWrite) that must be
/// closed explicitly with span_end(); a default-constructed or already
/// ended span is "not recording" and span_end() on it is a no-op, so the
/// untraced path needs no branches at the call sites.
class ActiveSpan {
 public:
  ActiveSpan() = default;
  ActiveSpan(ActiveSpan&& other) noexcept { swap(other); }
  ActiveSpan& operator=(ActiveSpan&& other) noexcept {
    if (this != &other) {
      ctx_ = SpanContext{};
      swap(other);
    }
    return *this;
  }
  ActiveSpan(const ActiveSpan&) = delete;
  ActiveSpan& operator=(const ActiveSpan&) = delete;

  [[nodiscard]] bool recording() const noexcept { return ctx_.valid(); }
  [[nodiscard]] SpanContext context() const noexcept { return ctx_; }

 private:
  friend ActiveSpan span_root(const char*, std::uint64_t, std::uint64_t);
  friend ActiveSpan span_begin(const char*, SpanContext, std::uint64_t);
  friend void span_end(ActiveSpan&, bool);

  void swap(ActiveSpan& other) noexcept {
    std::swap(ctx_, other.ctx_);
    std::swap(parent_id_, other.parent_id_);
    std::swap(name_, other.name_);
    std::swap(start_us_, other.start_us_);
  }

  SpanContext ctx_{};
  std::uint64_t parent_id_ = 0;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
};

/// Mints the root span of a new trace. `trace_id` is caller-chosen and
/// must be nonzero and unique per request within the session (LoadGen
/// uses the global request sequence number). `start_us` backdates the
/// span (0 = now): an open-loop client starts the root at the request's
/// *scheduled* send time so coordinated-omission queueing is attributed
/// to the trace, not silently dropped. Returns a non-recording span when
/// no collector is running or trace_id is 0.
[[nodiscard]] ActiveSpan span_root(const char* name, std::uint64_t trace_id,
                                   std::uint64_t start_us = 0);

/// Opens a child span under `parent`. Non-recording when the parent is
/// invalid or no collector is running, so contexts off the wire can be
/// passed through unconditionally.
[[nodiscard]] ActiveSpan span_begin(const char* name, SpanContext parent,
                                    std::uint64_t start_us = 0);

/// Closes a span and hands the record to the running collector. A root
/// span's end triggers trace assembly + the tail-sampling verdict.
/// No-op on a non-recording span; the span stops recording afterwards,
/// so double-close is harmless.
void span_end(ActiveSpan& span, bool error = false);

/// Ambient span context for the calling thread. wire_capture() stamps it
/// onto outgoing WireTrace piggybacks, so mp sends made under a SpanScope
/// automatically join the scoped trace.
[[nodiscard]] SpanContext current_span() noexcept;

/// Reads *and clears* the context most recently adopted from an incoming
/// message on this thread (wire_accept() parks it there). Server loops
/// call this right after receiving to parent their handling span;
/// clearing prevents a later untraced message from inheriting it.
[[nodiscard]] SpanContext take_incoming_span() noexcept;

/// RAII ambient-context scope: sends made while alive are stamped with
/// `ctx` (restores the previous ambient context on destruction).
class SpanScope {
 public:
  explicit SpanScope(SpanContext ctx);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  SpanContext prev_{};
};

/// RAII server-side bracket: opens `name` as a child of `parent`, makes
/// it the ambient context for the body, and closes it on destruction —
/// one line covers every early-return path of a handler.
class SpanGuard {
 public:
  SpanGuard(const char* name, SpanContext parent, std::uint64_t start_us = 0)
      : span_(span_begin(name, parent, start_us)),
        scope_(span_.recording() ? span_.context() : current_span()) {}
  ~SpanGuard() { span_end(span_, error_); }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  [[nodiscard]] SpanContext context() const noexcept { return span_.context(); }
  void set_error() noexcept { error_ = true; }

 private:
  ActiveSpan span_;
  SpanScope scope_;
  bool error_ = false;
};

/// One closed span inside a kept trace.
struct SpanNode {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool error = false;
  std::string name;
};

/// A kept trace: the assembled span tree plus sampling metadata. `source`
/// is empty locally; the Aggregator stamps the origin rank on first
/// sight (insert-if-absent, same rule as metric source labels).
struct TraceSummary {
  std::uint64_t trace_id = 0;
  std::uint64_t root_us = 0;  // root span latency
  bool error = false;         // any span tagged error
  std::string source;
  std::vector<SpanNode> spans;  // sorted by span_id
};

/// One hop of a critical path: the span and how much of the trace's
/// latency is *its own* (duration not covered by on-path children).
struct CriticalHop {
  std::uint64_t span_id = 0;
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t self_us = 0;
};

/// Longest causal chain through a trace, root first (hops ordered by
/// start time). Walks backwards from each on-path span's end: the child
/// whose end is latest-but-not-after the cursor joins the path, the gap
/// before the cursor is the parent's self-time, and the walk recurses
/// from the child's start. Deterministic for a deterministic tree.
[[nodiscard]] std::vector<CriticalHop> critical_path(const TraceSummary& trace);

/// An exemplar: the trace whose root latency most recently landed in one
/// pdc.trace.root_us histogram bucket — the jump-off from "the p99 is
/// 40ms" to "trace #4711 is why".
struct TraceExemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t root_us = 0;
};

struct SpanCollectorConfig {
  /// Tail-sampling store size: once full, a new error-free trace must
  /// beat the smallest kept root latency (the rotating threshold) to be
  /// kept, evicting that smallest trace. Error traces are always kept.
  std::size_t keep_slowest = 32;
};

/// A span session. Same shape as TraceCollector: construction does
/// nothing, start() begins recording process-wide (one session at a
/// time, checked), stop() ends it; render after (or during — renderers
/// lock against concurrent span_end) the session.
class SpanCollector {
 public:
  explicit SpanCollector(SpanCollectorConfig config = {});
  ~SpanCollector();

  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Resets span-id/accounting state and installs this collector as the
  /// span_end() sink. Registers the pdc.span.* conservation counters and
  /// the pdc.trace.root_us histogram eagerly so scrapes are stable.
  void start();

  /// Uninstalls the sink. Spans still open are counted dropped when they
  /// eventually close; buffered spans of never-closed roots are counted
  /// dropped immediately. Kept traces stay renderable after stop().
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Exact tail-sampling accounting (traces, not spans — the span-level
  /// ledger is the pdc.span.* counters).
  [[nodiscard]] std::uint64_t traces_completed() const;
  [[nodiscard]] std::uint64_t traces_kept() const;
  [[nodiscard]] std::uint64_t traces_dropped() const;
  /// Kept once, then displaced by a slower trace after the store filled.
  [[nodiscard]] std::uint64_t traces_evicted() const;
  /// Current rotating threshold (0 until the store is full).
  [[nodiscard]] std::uint64_t threshold_us() const;

  [[nodiscard]] std::vector<TraceSummary> slowest(std::size_t n) const;
  [[nodiscard]] std::optional<TraceSummary> by_id(std::uint64_t trace_id) const;
  [[nodiscard]] std::array<std::optional<TraceExemplar>, kHistogramBuckets>
  exemplars() const;

  /// JSON renderers for the telemetry endpoints (newline-terminated).
  [[nodiscard]] std::string slowest_json(std::size_t n) const;
  [[nodiscard]] std::string byid_json(std::uint64_t trace_id) const;
  /// {"pdc.trace.root_us":[{"bucket":..,"le":..,"trace_id":..,"root_us":..}]}
  /// — spliced into /metrics.json next to the histogram it annotates.
  [[nodiscard]] std::string exemplars_json() const;
  /// Line-oriented federation form (see parse_traces_wire).
  [[nodiscard]] std::string slowest_wire(std::size_t n) const;

 private:
  SpanCollectorConfig config_;
  bool running_ = false;
};

/// Renders trace summaries as the /trace/slowest JSON array element form
/// (critical-path annotated). Shared by SpanCollector and Aggregator.
[[nodiscard]] std::string trace_json(const TraceSummary& trace);

/// Wire form: one "t <trace_id> <root_us> <error> <source|->" line per
/// trace, followed by one "s <span_id> <parent_id> <start_us> <end_us>
/// <error> <name>" line per span.
[[nodiscard]] std::string trace_summaries_wire(
    const std::vector<TraceSummary>& traces);
[[nodiscard]] std::optional<std::vector<TraceSummary>> parse_traces_wire(
    const std::string& text);

}  // namespace pdc::obs
