#include "obs/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/metrics.hpp"

namespace pdc::obs {

namespace {

void append_json_string(std::string& out, const std::string& text) {
  out += '"';
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

std::string roundtrip_double(double value) {
  // Shortest round-trippable form keeps the JSON diff-friendly.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lg", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    std::sscanf(shorter, "%lg", &parsed);
    if (parsed == value) return shorter;
  }
  return buffer;
}

}  // namespace

void BenchReport::add_table(const support::TextTable& table) {
  tables_.push_back(TableCopy{table.title(), table.header(), table.rows()});
}

void BenchReport::add_metric(std::string name, double value) {
  metrics_.emplace_back(std::move(name), value);
}

std::string BenchReport::to_json() const {
  std::string out = "{\"bench\":";
  append_json_string(out, name_);
  out += ",\"metrics\":{";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, metrics_[i].first);
    out += ':';
    out += roundtrip_double(metrics_[i].second);
  }
  out += "},\"tables\":[";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (t != 0) out += ',';
    const TableCopy& table = tables_[t];
    out += "{\"title\":";
    append_json_string(out, table.title);
    out += ",\"header\":[";
    for (std::size_t i = 0; i < table.header.size(); ++i) {
      if (i != 0) out += ',';
      append_json_string(out, table.header[i]);
    }
    out += "],\"rows\":[";
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
      if (r != 0) out += ',';
      out += '[';
      for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
        if (c != 0) out += ',';
        append_json_string(out, table.rows[r][c]);
      }
      out += ']';
    }
    out += "]}";
  }
  out += "],\"registry\":";
  out += MetricsRegistry::instance().scrape().to_json();
  out += "}\n";
  return out;
}

bool BenchReport::write_if_requested() const {
  const char* dest = std::getenv("PDCKIT_BENCH_JSON");
  if (dest == nullptr || *dest == '\0') return false;
  const std::string json = to_json();
  if (std::string_view(dest) == "-") {
    std::cout << json;
    return true;
  }
  std::ofstream out(dest);
  if (!out) {
    std::cerr << "BenchReport: cannot open '" << dest << "' for writing\n";
    return false;
  }
  out << json;
  return static_cast<bool>(out);
}

}  // namespace pdc::obs
