// Glue between testkit::ScheduleExplorer and the trace layer: when seed
// search finds a failing interleaving, replay it with a TraceCollector
// running so the minimal failing schedule comes back as a Perfetto-
// loadable Chrome trace next to the scheduler's own step log.
//
// This lives in obs (not testkit) on purpose — obs already depends on
// testkit for virtual-clock timestamps, so the dump glue pointing the
// other way would close a dependency cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "testkit/schedule_explorer.hpp"

namespace pdc::obs {

/// Everything needed to understand one replayed interleaving.
struct ReplayDump {
  testkit::RunReport report;  // scheduler's view (steps, switches, trace)
  std::string failure;        // check()/scheduler failure text; empty = pass
  std::string chrome_trace;   // obs trace of the same run, Chrome JSON
  std::string minimal_trace;  // report.format_minimal_trace() convenience

  [[nodiscard]] bool failed() const { return !failure.empty(); }

  /// Writes chrome_trace to `path`; returns false on I/O failure.
  bool write_trace(const std::string& path) const;
};

/// Replays `seed` under the explorer's policy with a TraceCollector
/// running for the duration of the run.
[[nodiscard]] ReplayDump replay_with_trace(
    const testkit::ScheduleExplorer& explorer, std::uint64_t seed,
    const std::function<testkit::RunPlan()>& make_run);

/// explore() + on failure, replay_with_trace() of the failing seed.
/// When no failure is found the dump's report is the last explore run's
/// metadata and chrome_trace is empty.
[[nodiscard]] ReplayDump explore_and_dump(
    const testkit::ScheduleExplorer& explorer,
    const std::function<testkit::RunPlan()>& make_run);

}  // namespace pdc::obs
