#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>

#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::obs {

namespace detail {
thread_local WorkerSlot* t_profile_slot = nullptr;
}  // namespace detail

const char* to_string(WorkerState state) {
  switch (state) {
    case WorkerState::kIdle: return "idle";
    case WorkerState::kRunning: return "running";
    case WorkerState::kStealing: return "stealing";
    case WorkerState::kParked: return "parked";
  }
  return "?";
}

Profiler& Profiler::instance() {
  // Leaked deliberately: pool workers release their slots as their
  // threads exit, which can happen after function-local statics are torn
  // down (the default pool is itself a function-local static).
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Profiler::Profiler() {
  labels_.emplace_back("-");     // kNoLabel
  labels_.emplace_back("task");  // kTaskLabel
  label_ids_.emplace("-", kNoLabel);
  label_ids_.emplace("task", kTaskLabel);
}

WorkerSlot* Profiler::register_worker(std::string name) {
  if constexpr (!kObsEnabled) return nullptr;
  std::scoped_lock lock(mutex_);
  for (auto& slot : slots_) {
    if (!slot->active_ && slot->name_ == name) {
      slot->active_ = true;
      slot->word_.store(0, std::memory_order_relaxed);
      return slot.get();
    }
  }
  slots_.push_back(std::make_unique<WorkerSlot>());
  WorkerSlot* slot = slots_.back().get();
  slot->name_ = std::move(name);
  slot->active_ = true;
  return slot;
}

void Profiler::release_worker(WorkerSlot* slot) {
  if (slot == nullptr) return;
  std::scoped_lock lock(mutex_);
  slot->active_ = false;
}

std::uint32_t Profiler::intern_label(std::string_view label) {
  if constexpr (!kObsEnabled) return kNoLabel;
  std::scoped_lock lock(mutex_);
  if (auto it = label_ids_.find(label); it != label_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(labels_.size());
  labels_.emplace_back(label);
  label_ids_.emplace(labels_.back(), id);
  return id;
}

void Profiler::sample_into_locked(FoldedProfile& folded) {
  for (const auto& slot : slots_) {
    if (!slot->active_) continue;
    const std::uint64_t word = slot->word_.load(std::memory_order_relaxed);
    const WorkerState state = WorkerSlot::state_of(word);
    std::string key = slot->name_;
    key += ';';
    key += to_string(state);
    if (state == WorkerState::kRunning) {
      std::uint32_t label = WorkerSlot::label_of(word);
      if (label >= labels_.size()) label = kNoLabel;  // torn/stale id
      key += ';';
      key += labels_[label];
    }
    ++folded[key];
  }
}

void Profiler::sample_once() {
  if constexpr (!kObsEnabled) return;
  std::scoped_lock lock(mutex_);
  sample_into_locked(folded_);
  ++samples_;
}

void Profiler::sample_into(FoldedProfile& folded) {
  if constexpr (!kObsEnabled) return;
  std::scoped_lock lock(mutex_);
  sample_into_locked(folded);
}

void Profiler::start(std::uint64_t period_us) {
  if constexpr (!kObsEnabled) return;
  PDC_CHECK(period_us > 0);
  bool expected = false;
  if (!sampling_.compare_exchange_strong(expected, true)) return;
  period_us_ = period_us;
  sampler_ = std::thread([this] {
    while (sampling_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(period_us_));
      if (!sampling_.load(std::memory_order_acquire)) break;
      sample_once();
    }
  });
}

void Profiler::stop() {
  if (!sampling_.exchange(false)) return;
  if (sampler_.joinable()) sampler_.join();
}

bool Profiler::running() const {
  return sampling_.load(std::memory_order_acquire);
}

void Profiler::run_sim_sampler(double period_seconds,
                               const std::function<bool()>& done) {
  if constexpr (!kObsEnabled) return;
  while (!done()) {
    testkit::poll_pause("profiler.sample", period_seconds);
    sample_once();
  }
}

std::string Profiler::collect(std::uint64_t duration_ms,
                              std::uint64_t period_us) {
  if constexpr (!kObsEnabled) return {};
  if (period_us == 0) period_us = 1000;
  FoldedProfile window;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(duration_ms);
  do {
    sample_into(window);
    std::this_thread::sleep_for(std::chrono::microseconds(period_us));
  } while (std::chrono::steady_clock::now() < deadline);
  return render_folded(window);
}

void Profiler::reset() {
  std::scoped_lock lock(mutex_);
  folded_.clear();
  samples_ = 0;
}

std::uint64_t Profiler::samples() const {
  std::scoped_lock lock(mutex_);
  return samples_;
}

std::string Profiler::folded() const {
  std::scoped_lock lock(mutex_);
  return render_folded(folded_);
}

std::string Profiler::to_json() const {
  std::scoped_lock lock(mutex_);
  std::string out = "{\"samples\":" + std::to_string(samples_) +
                    ",\"folded\":{";
  bool first = true;
  for (const auto& [key, count] : folded_) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, key);
    out += ':' + std::to_string(count);
  }
  out += "}}";
  return out;
}

// ---------------------------------------------------------------------------
// Contention sites

namespace {

struct SiteCatalog {
  std::mutex mutex;
  std::map<std::string, SiteLocation, std::less<>> sites;
};

SiteCatalog& site_catalog() {
  static SiteCatalog* catalog = new SiteCatalog();  // leaked, like Profiler
  return *catalog;
}

}  // namespace

void ContentionSite::init_slow(const char* name, const char* file, int line) {
  {
    SiteCatalog& catalog = site_catalog();
    std::scoped_lock lock(catalog.mutex);
    // First registration wins: a template instantiated for several types
    // (BoundedQueue<T>) shares one catalog row and one histogram series.
    catalog.sites.try_emplace(name, SiteLocation{file, line});
  }
  wait_hist_ = &MetricsRegistry::instance().histogram("pdc.contend.wait_us",
                                                      {{"site", name}});
}

std::optional<SiteLocation> contention_site_location(std::string_view name) {
  SiteCatalog& catalog = site_catalog();
  std::scoped_lock lock(catalog.mutex);
  if (auto it = catalog.sites.find(name); it != catalog.sites.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::vector<ContentionStat> contention_topk(const MetricsSnapshot& snapshot,
                                            std::size_t k) {
  std::vector<ContentionStat> stats;
  for (const auto& s : snapshot.samples) {
    if (s.kind != MetricKind::kHistogram) continue;
    if (s.base != "pdc.contend.wait_us") continue;
    // Exactly {site=...}: in a federated snapshot this selects the
    // fleet-wide aggregate series, not the rank-stamped duplicates.
    if (s.labels.size() != 1 || s.labels[0].first != "site") continue;
    if (s.count == 0) continue;
    ContentionStat stat;
    stat.site = s.labels[0].second;
    stat.count = s.count;
    stat.total_wait_us = s.sum;
    stat.mean_us =
        static_cast<double>(s.sum) / static_cast<double>(s.count);
    stat.p50_us = s.quantile(0.5);
    stat.p99_us = s.quantile(0.99);
    if (auto loc = contention_site_location(stat.site); loc.has_value()) {
      stat.file = std::move(loc->file);
      stat.line = loc->line;
    }
    stats.push_back(std::move(stat));
  }
  std::sort(stats.begin(), stats.end(),
            [](const ContentionStat& a, const ContentionStat& b) {
              if (a.total_wait_us != b.total_wait_us) {
                return a.total_wait_us > b.total_wait_us;
              }
              return a.site < b.site;
            });
  if (stats.size() > k) stats.resize(k);
  return stats;
}

std::string contention_json(const std::vector<ContentionStat>& stats) {
  std::string out = "{\"top\":[";
  bool first = true;
  for (const auto& s : stats) {
    if (!first) out += ',';
    first = false;
    out += "{\"site\":";
    append_json_string(out, s.site);
    if (!s.file.empty()) {
      out += ",\"file\":";
      append_json_string(out, s.file);
      out += ",\"line\":" + std::to_string(s.line);
    }
    out += ",\"count\":" + std::to_string(s.count) +
           ",\"total_wait_us\":" + std::to_string(s.total_wait_us) +
           ",\"mean_us\":" + format_double(s.mean_us) +
           ",\"p50_us\":" + format_double(s.p50_us) +
           ",\"p99_us\":" + format_double(s.p99_us) + '}';
  }
  out += "]}";
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> top_k_by_value(
    std::vector<std::pair<std::string, std::uint64_t>> entries,
    std::size_t k) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

// ---------------------------------------------------------------------------
// Folded text

FoldedProfile parse_folded(std::string_view text) {
  FoldedProfile out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) continue;
    const std::string_view digits = line.substr(space + 1);
    if (digits.empty()) continue;
    std::uint64_t count = 0;
    bool ok = true;
    for (char ch : digits) {
      if (ch < '0' || ch > '9') {
        ok = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(ch - '0');
    }
    if (!ok) continue;
    out[std::string(line.substr(0, space))] += count;
  }
  return out;
}

std::string render_folded(const FoldedProfile& folded) {
  std::string out;
  for (const auto& [key, count] : folded) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace pdc::obs
