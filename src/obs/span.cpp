#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pdc::obs {

namespace detail {

std::atomic<bool> g_span_enabled{false};

namespace {

/// Contexts are plain thread-locals: the ambient slot is what
/// wire_capture() stamps onto outgoing piggybacks, the incoming slot is
/// where wire_accept() parks the context it pulled off a message until
/// the handler claims it with take_incoming_span().
thread_local SpanContext t_ambient{};
thread_local SpanContext t_incoming{};

/// A closed span waiting for its trace's root to close. Name stays a
/// borrowed literal until the trace is kept.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  bool error = false;
  const char* name = nullptr;
};

struct SpanState {
  std::mutex mutex;
  bool running = false;
  SpanCollectorConfig config;
  // Closed non-root spans buffered per trace until the root closes.
  std::map<std::uint64_t, std::vector<SpanRecord>> pending;
  // Kept traces ordered by (root latency, trace id): begin() is the
  // rotating tail-sampling threshold candidate.
  std::map<std::pair<std::uint64_t, std::uint64_t>, TraceSummary> kept;
  // Verdict per completed trace, so spans closing after their root
  // (asynchronous completions) still land — or are still dropped —
  // on the right side of the ledger.
  std::map<std::uint64_t, bool> classified;
  std::array<std::optional<TraceExemplar>, kHistogramBuckets> exemplars;
  std::size_t kept_errors = 0;  // kept traces with the error tag
  std::uint64_t completed = 0;
  std::uint64_t kept_count = 0;
  std::uint64_t dropped_count = 0;
  std::uint64_t evicted_count = 0;
};

SpanState& state() {
  static SpanState instance;
  return instance;
}

std::atomic<std::uint64_t> g_next_span_id{1};

void count_sampled(std::uint64_t n) { PDC_OBS_COUNT("pdc.span.sampled", n); }
void count_dropped(std::uint64_t n) { PDC_OBS_COUNT("pdc.span.dropped", n); }

SpanNode to_node(const SpanRecord& record) {
  SpanNode node;
  node.span_id = record.span_id;
  node.parent_id = record.parent_id;
  node.start_us = record.start_us;
  node.end_us = record.end_us;
  node.error = record.error;
  node.name = record.name == nullptr ? "" : record.name;
  return node;
}

/// Number of non-error traces currently kept — the population the
/// rotating threshold rotates over (error traces are unconditional).
std::size_t kept_plain(const SpanState& st) {
  return st.kept.size() - st.kept_errors;
}

/// Smallest-latency kept trace without the error tag, or end().
auto min_plain(SpanState& st) {
  auto it = st.kept.begin();
  while (it != st.kept.end() && it->second.error) ++it;
  return it;
}

/// Root span closed: assemble the tree, pass the tail-sampling verdict,
/// and settle the span ledger for everything buffered. Caller holds the
/// state mutex.
void complete_trace(SpanState& st, const SpanRecord& root) {
  TraceSummary trace;
  trace.trace_id = root.trace_id;
  trace.root_us = root.end_us - std::min(root.start_us, root.end_us);
  auto buffered = st.pending.find(root.trace_id);
  if (buffered != st.pending.end()) {
    trace.spans.reserve(buffered->second.size() + 1);
    for (const SpanRecord& record : buffered->second) {
      trace.spans.push_back(to_node(record));
      trace.error = trace.error || record.error;
    }
    st.pending.erase(buffered);
  }
  trace.spans.push_back(to_node(root));
  trace.error = trace.error || root.error;
  std::sort(trace.spans.begin(), trace.spans.end(),
            [](const SpanNode& a, const SpanNode& b) {
              return a.span_id < b.span_id;
            });

  ++st.completed;
  PDC_OBS_HIST("pdc.trace.root_us", trace.root_us);

  bool keep = false;
  if (trace.error) {
    // Error traces are always kept and never evicted: the whole point of
    // tail sampling is that the interesting tail survives.
    keep = true;
  } else if (kept_plain(st) < st.config.keep_slowest) {
    keep = true;
  } else {
    auto min_it = min_plain(st);
    if (min_it != st.kept.end() && trace.root_us > min_it->first.first) {
      st.kept_count -= 1;
      ++st.evicted_count;
      st.kept.erase(min_it);
      keep = true;
    }
  }

  const std::uint64_t spans = trace.spans.size();
  st.classified[trace.trace_id] = keep;
  if (keep) {
    ++st.kept_count;
    if (trace.error) ++st.kept_errors;
    const std::size_t bucket = Histogram::bucket_of(trace.root_us);
    st.exemplars[bucket] = TraceExemplar{trace.trace_id, trace.root_us};
    st.kept.emplace(std::make_pair(trace.root_us, trace.trace_id),
                    std::move(trace));
    count_sampled(spans);
  } else {
    ++st.dropped_count;
    count_dropped(spans);
  }
}

/// A span closed after its trace was already classified: kept traces
/// absorb it (the tree stays complete), everything else drops.
void settle_late(SpanState& st, const SpanRecord& record, bool kept) {
  if (!kept) {
    count_dropped(1);
    return;
  }
  count_sampled(1);
  for (auto& [key, trace] : st.kept) {
    if (key.second != record.trace_id) continue;
    trace.spans.push_back(to_node(record));
    trace.error = trace.error || record.error;
    std::sort(trace.spans.begin(), trace.spans.end(),
              [](const SpanNode& a, const SpanNode& b) {
                return a.span_id < b.span_id;
              });
    return;
  }
  // Kept once but since evicted: the ledger already called its siblings
  // sampled, stay consistent.
}

}  // namespace

void span_stamp_slow(WireTrace& trace) {
  if (t_ambient.valid()) {
    trace.trace_id = t_ambient.trace_id;
    trace.trace_span = t_ambient.span_id;
  }
}

void span_adopt_slow(const WireTrace& trace) {
  // Sets *or clears*: an untraced message must not leave a stale context
  // for the next handler to adopt.
  t_incoming = SpanContext{trace.trace_id, trace.trace_span};
}

}  // namespace detail

ActiveSpan span_root(const char* name, std::uint64_t trace_id,
                     std::uint64_t start_us) {
  ActiveSpan span;
  if (!span_enabled() || trace_id == 0) return span;
  span.ctx_.trace_id = trace_id;
  span.ctx_.span_id =
      detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  span.parent_id_ = 0;
  span.name_ = name;
  span.start_us_ = start_us != 0 ? start_us : now_us();
  PDC_OBS_COUNT("pdc.span.started");
  return span;
}

ActiveSpan span_begin(const char* name, SpanContext parent,
                      std::uint64_t start_us) {
  ActiveSpan span;
  if (!span_enabled() || !parent.valid()) return span;
  span.ctx_.trace_id = parent.trace_id;
  span.ctx_.span_id =
      detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  span.parent_id_ = parent.span_id;
  span.name_ = name;
  span.start_us_ = start_us != 0 ? start_us : now_us();
  PDC_OBS_COUNT("pdc.span.started");
  return span;
}

void span_end(ActiveSpan& span, bool error) {
  if (!span.recording()) return;
  detail::SpanRecord record;
  record.trace_id = span.ctx_.trace_id;
  record.span_id = span.ctx_.span_id;
  record.parent_id = span.parent_id_;
  record.start_us = span.start_us_;
  record.end_us = std::max(span.start_us_, now_us());
  record.error = error;
  record.name = span.name_;
  span.ctx_ = SpanContext{};  // stops recording; double-close is a no-op
  PDC_OBS_COUNT("pdc.span.finished");

  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  if (!st.running) {
    // Session ended while the span was open: finished, never sampled.
    detail::count_dropped(1);
    return;
  }
  auto verdict = st.classified.find(record.trace_id);
  if (verdict != st.classified.end()) {
    detail::settle_late(st, record, verdict->second);
  } else if (record.parent_id == 0) {
    detail::complete_trace(st, record);
  } else {
    st.pending[record.trace_id].push_back(record);
  }
}

SpanContext current_span() noexcept { return detail::t_ambient; }

SpanContext take_incoming_span() noexcept {
  return std::exchange(detail::t_incoming, SpanContext{});
}

SpanScope::SpanScope(SpanContext ctx)
    : prev_(std::exchange(detail::t_ambient, ctx)) {}

SpanScope::~SpanScope() { detail::t_ambient = prev_; }

SpanCollector::SpanCollector(SpanCollectorConfig config) : config_(config) {}

SpanCollector::~SpanCollector() {
  if (running_) stop();
}

void SpanCollector::start() {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  PDC_CHECK_MSG(!st.running, "only one SpanCollector may run at a time");
  st.config = config_;
  st.pending.clear();
  st.kept.clear();
  st.classified.clear();
  st.exemplars.fill(std::nullopt);
  st.kept_errors = 0;
  st.completed = 0;
  st.kept_count = 0;
  st.dropped_count = 0;
  st.evicted_count = 0;
  detail::g_next_span_id.store(1, std::memory_order_relaxed);
  if constexpr (kObsEnabled) {
    // Conservation counters and the exemplar histogram exist from the
    // first scrape on, whether or not a span ever closes.
    auto& registry = MetricsRegistry::instance();
    registry.counter("pdc.span.started");
    registry.counter("pdc.span.finished");
    registry.counter("pdc.span.sampled");
    registry.counter("pdc.span.dropped");
    registry.histogram("pdc.trace.root_us");
    st.running = true;
    detail::g_span_enabled.store(true, std::memory_order_release);
  }
  running_ = true;
}

void SpanCollector::stop() {
  PDC_CHECK_MSG(running_, "SpanCollector::stop without start");
  detail::g_span_enabled.store(false, std::memory_order_release);
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  // Roots that never closed: their buffered spans finished but can no
  // longer be sampled — settle them as dropped so the ledger balances.
  for (const auto& [trace_id, records] : st.pending) {
    detail::count_dropped(records.size());
    ++st.dropped_count;
    st.classified[trace_id] = false;
  }
  st.pending.clear();
  st.running = false;
  running_ = false;
}

std::uint64_t SpanCollector::traces_completed() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  return st.completed;
}

std::uint64_t SpanCollector::traces_kept() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  return st.kept_count;
}

std::uint64_t SpanCollector::traces_dropped() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  return st.dropped_count;
}

std::uint64_t SpanCollector::traces_evicted() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  return st.evicted_count;
}

std::uint64_t SpanCollector::threshold_us() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  if (detail::kept_plain(st) < st.config.keep_slowest) return 0;
  auto it = detail::min_plain(st);
  return it == st.kept.end() ? 0 : it->first.first;
}

std::vector<TraceSummary> SpanCollector::slowest(std::size_t n) const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  std::vector<TraceSummary> out;
  out.reserve(std::min(n, st.kept.size()));
  for (auto it = st.kept.rbegin(); it != st.kept.rend() && out.size() < n;
       ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::optional<TraceSummary> SpanCollector::by_id(std::uint64_t trace_id) const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  for (const auto& [key, trace] : st.kept) {
    if (key.second == trace_id) return trace;
  }
  return std::nullopt;
}

std::array<std::optional<TraceExemplar>, kHistogramBuckets>
SpanCollector::exemplars() const {
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  return st.exemplars;
}

namespace {

struct TreeIndex {
  const TraceSummary* trace = nullptr;
  // children[i] = indices into trace->spans, sorted by (end, id) desc so
  // the backward walk meets the latest-finishing child first.
  std::vector<std::vector<std::size_t>> children;
  std::size_t root = SIZE_MAX;
};

TreeIndex index_tree(const TraceSummary& trace) {
  TreeIndex index;
  index.trace = &trace;
  index.children.resize(trace.spans.size());
  std::map<std::uint64_t, std::size_t> by_id;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    by_id[trace.spans[i].span_id] = i;
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const SpanNode& span = trace.spans[i];
    auto parent = by_id.find(span.parent_id);
    if (span.parent_id != 0 && parent != by_id.end()) {
      index.children[parent->second].push_back(i);
    } else if (index.root == SIZE_MAX) {
      // First orphan by span id is the root (parent 0, or a parent the
      // sampler never saw).
      index.root = i;
    }
  }
  for (auto& kids : index.children) {
    std::sort(kids.begin(), kids.end(), [&](std::size_t a, std::size_t b) {
      const SpanNode& sa = trace.spans[a];
      const SpanNode& sb = trace.spans[b];
      if (sa.end_us != sb.end_us) return sa.end_us > sb.end_us;
      return sa.span_id > sb.span_id;
    });
  }
  return index;
}

void walk_critical(const TreeIndex& index, std::size_t at,
                   std::vector<CriticalHop>& hops) {
  const SpanNode& span = index.trace->spans[at];
  CriticalHop hop{span.span_id, span.name, span.start_us, span.end_us, 0};
  // Backward walk: start the cursor at this span's end; each on-path
  // child accounts [child.start, child.end), the gap between the child's
  // end and the cursor is *this* span's self-time.
  std::uint64_t cursor = span.end_us;
  std::uint64_t self = 0;
  for (std::size_t child_at : index.children[at]) {
    const SpanNode& child = index.trace->spans[child_at];
    if (child.end_us > cursor) continue;  // overlapped by a later child
    self += cursor - child.end_us;
    walk_critical(index, child_at, hops);
    cursor = std::clamp(child.start_us, span.start_us, cursor);
  }
  self += cursor - std::min(span.start_us, cursor);
  hop.self_us = self;
  hops.push_back(hop);
}

}  // namespace

std::vector<CriticalHop> critical_path(const TraceSummary& trace) {
  std::vector<CriticalHop> hops;
  if (trace.spans.empty()) return hops;
  const TreeIndex index = index_tree(trace);
  if (index.root == SIZE_MAX) return hops;
  walk_critical(index, index.root, hops);
  std::sort(hops.begin(), hops.end(),
            [](const CriticalHop& a, const CriticalHop& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.span_id < b.span_id;
            });
  return hops;
}

std::string trace_json(const TraceSummary& trace) {
  std::string out = "{\"trace_id\":" + std::to_string(trace.trace_id);
  out += ",\"source\":";
  append_json_string(out, trace.source);
  out += ",\"root_us\":" + std::to_string(trace.root_us);
  out += ",\"error\":";
  out += trace.error ? "true" : "false";
  out += ",\"critical_path\":[";
  bool first = true;
  for (const CriticalHop& hop : critical_path(trace)) {
    if (!first) out += ',';
    first = false;
    out += "{\"span_id\":" + std::to_string(hop.span_id) + ",\"name\":";
    append_json_string(out, hop.name);
    out += ",\"start_us\":" + std::to_string(hop.start_us);
    out += ",\"end_us\":" + std::to_string(hop.end_us);
    out += ",\"self_us\":" + std::to_string(hop.self_us) + "}";
  }
  out += "],\"spans\":[";
  first = true;
  for (const SpanNode& span : trace.spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"span_id\":" + std::to_string(span.span_id);
    out += ",\"parent_id\":" + std::to_string(span.parent_id);
    out += ",\"name\":";
    append_json_string(out, span.name);
    out += ",\"start_us\":" + std::to_string(span.start_us);
    out += ",\"end_us\":" + std::to_string(span.end_us);
    out += ",\"error\":";
    out += span.error ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

std::string SpanCollector::slowest_json(std::size_t n) const {
  const std::vector<TraceSummary> traces = slowest(n);
  auto& st = detail::state();
  std::scoped_lock lock(st.mutex);
  std::string out = "{\"kept\":" + std::to_string(st.kept_count);
  out += ",\"dropped\":" + std::to_string(st.dropped_count);
  out += ",\"evicted\":" + std::to_string(st.evicted_count);
  out += ",\"completed\":" + std::to_string(st.completed);
  std::uint64_t threshold = 0;
  if (detail::kept_plain(st) >= st.config.keep_slowest) {
    auto it = detail::min_plain(st);
    if (it != st.kept.end()) threshold = it->first.first;
  }
  out += ",\"threshold_us\":" + std::to_string(threshold);
  out += ",\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i != 0) out += ',';
    out += trace_json(traces[i]);
  }
  out += "]}\n";
  return out;
}

std::string SpanCollector::byid_json(std::uint64_t trace_id) const {
  auto trace = by_id(trace_id);
  if (!trace.has_value()) {
    return "{\"error\":\"no kept trace with id " + std::to_string(trace_id) +
           "\"}\n";
  }
  return trace_json(trace.value()) + "\n";
}

std::string SpanCollector::exemplars_json() const {
  const auto pins = exemplars();
  std::string out = "{\"pdc.trace.root_us\":[";
  bool first = true;
  for (std::size_t b = 0; b < pins.size(); ++b) {
    if (!pins[b].has_value()) continue;
    if (!first) out += ',';
    first = false;
    const double upper = Histogram::bucket_upper(b);
    out += "{\"bucket\":" + std::to_string(b) + ",\"le\":\"";
    out += std::isinf(upper) ? "+Inf" : format_double(upper);
    out += "\",\"trace_id\":" + std::to_string(pins[b]->trace_id);
    out += ",\"root_us\":" + std::to_string(pins[b]->root_us) + "}";
  }
  out += "]}";
  return out;
}

std::string SpanCollector::slowest_wire(std::size_t n) const {
  return trace_summaries_wire(slowest(n));
}

std::string trace_summaries_wire(const std::vector<TraceSummary>& traces) {
  std::string out;
  for (const TraceSummary& trace : traces) {
    out += "t " + std::to_string(trace.trace_id) + ' ' +
           std::to_string(trace.root_us) + ' ' + (trace.error ? "1" : "0") +
           ' ' + (trace.source.empty() ? "-" : trace.source) + '\n';
    for (const SpanNode& span : trace.spans) {
      out += "s " + std::to_string(span.span_id) + ' ' +
             std::to_string(span.parent_id) + ' ' +
             std::to_string(span.start_us) + ' ' +
             std::to_string(span.end_us) + ' ' + (span.error ? "1" : "0") +
             ' ' + span.name + '\n';
    }
  }
  return out;
}

std::optional<std::vector<TraceSummary>> parse_traces_wire(
    const std::string& text) {
  std::vector<TraceSummary> traces;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "t") {
      TraceSummary trace;
      int error = 0;
      std::string source;
      if (!(fields >> trace.trace_id >> trace.root_us >> error >> source)) {
        return std::nullopt;
      }
      trace.error = error != 0;
      if (source != "-") trace.source = source;
      traces.push_back(std::move(trace));
    } else if (kind == "s") {
      if (traces.empty()) return std::nullopt;
      SpanNode span;
      int error = 0;
      if (!(fields >> span.span_id >> span.parent_id >> span.start_us >>
            span.end_us >> error >> span.name)) {
        return std::nullopt;
      }
      span.error = error != 0;
      traces.back().spans.push_back(std::move(span));
    } else {
      return std::nullopt;
    }
  }
  return traces;
}

}  // namespace pdc::obs
