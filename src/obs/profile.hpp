// Continuous profiling plane: a sampling task/worker profiler and a
// lock-contention observatory (PR 7).
//
// Two instruments, one design rule — the *instrumented* path pays almost
// nothing, the *observer* pays everything:
//
//  1. Worker slots. Each pool worker owns a WorkerSlot and publishes
//     "what am I doing right now" — a WorkerState plus an interned task
//     label — as ONE packed 64-bit word written with a single relaxed
//     store. This is the degenerate case of a seqlock: because the whole
//     record fits in one atomic word, the odd/even sequence dance
//     collapses and publication is strictly cheaper than the classical
//     two-store bracket (no RMW, no fence, no branch). A sampler walks
//     the slots on its own schedule, decodes each word, and accumulates
//     folded flamegraph stacks `worker;state[;label] <count>` — on-CPU
//     (running/stealing) vs off-CPU (parked/idle) attribution per worker
//     for the price of ~2 relaxed stores per task on the hot path.
//
//     The sampler is virtual-clock-driven under a testkit::SimScheduler
//     run (run_sim_sampler as one of the logical threads — fixed seed ⇒
//     byte-stable folded output, the golden test) and wall-clock-driven
//     otherwise (start()/stop() own a background thread).
//
//  2. Contention sites. Blocking primitives (spinlocks, RwLock, Monitor,
//     BoundedQueue) declare a static per-call-site ContentionSite
//     (name + file:line, interned into a process-wide catalog) and feed
//     their *slow path only* with the measured wait. Waits land in the
//     labeled histogram family `pdc.contend.wait_us{site="..."}` in the
//     process-wide MetricsRegistry, so they federate across ranks like
//     any other series; contention_topk() ranks sites by total wait for
//     the /profile/contention endpoint. Under SimScheduler the waits are
//     virtual microseconds — fixed-seed runs produce identical
//     histograms.
//
// Everything here compiles out under PDCKIT_OBS_NOOP: publish/record
// become no-ops, the Profiler returns empty output, and the telemetry
// endpoints answer an error body (tests assert this).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdc::obs {

/// What a worker is doing at the instant of a sample.
enum class WorkerState : std::uint8_t {
  kIdle = 0,      // between tasks, not yet parked
  kRunning = 1,   // executing a task
  kStealing = 2,  // sweeping peer deques / hunting for work
  kParked = 3,    // blocked on the idle CV
};

[[nodiscard]] const char* to_string(WorkerState state);

/// One worker's published record: WorkerState in the low byte, interned
/// label id in the upper 56 bits, packed so publication is a single
/// relaxed store (see file comment). Slots are owned by the Profiler and
/// never freed; the registering worker is the only writer.
class WorkerSlot {
 public:
  [[nodiscard]] static constexpr std::uint64_t pack(
      WorkerState state, std::uint32_t label_id) noexcept {
    return (static_cast<std::uint64_t>(label_id) << 8) |
           static_cast<std::uint64_t>(state);
  }
  [[nodiscard]] static constexpr WorkerState state_of(
      std::uint64_t word) noexcept {
    return static_cast<WorkerState>(word & 0xff);
  }
  [[nodiscard]] static constexpr std::uint32_t label_of(
      std::uint64_t word) noexcept {
    return static_cast<std::uint32_t>(word >> 8);
  }

  /// The hot-path publish: one relaxed store, no RMW.
  void publish(WorkerState state, std::uint32_t label_id = 0) noexcept {
    if constexpr (kObsEnabled) {
      word_.store(pack(state, label_id), std::memory_order_relaxed);
    } else {
      (void)state;
      (void)label_id;
    }
  }

  /// Owner-side read of the current word (for save/restore scoping).
  [[nodiscard]] std::uint64_t word() const noexcept {
    if constexpr (kObsEnabled) {
      return word_.load(std::memory_order_relaxed);
    } else {
      return 0;
    }
  }

  /// Restores a word previously read with word() — the second half of the
  /// ProfiledTask store pair.
  void restore(std::uint64_t word) noexcept {
    if constexpr (kObsEnabled) {
      word_.store(word, std::memory_order_relaxed);
    } else {
      (void)word;
    }
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class Profiler;
  alignas(64) std::atomic<std::uint64_t> word_{0};
  std::string name_;     // fixed at registration
  bool active_ = false;  // guarded by the Profiler mutex
};

namespace detail {
extern thread_local WorkerSlot* t_profile_slot;
}  // namespace detail

/// Folded flamegraph accumulation: stack key → sample count. Keys are
/// `worker;state` for non-running states and `worker;running;label` when a
/// task label is published — flamegraph.pl-compatible once rendered.
using FoldedProfile = std::map<std::string, std::uint64_t>;

/// The process-wide sampling profiler. Workers register a slot once and
/// publish into it; one sampler (background thread, sim logical thread, or
/// an endpoint's collect window) walks the slots. Registration and
/// sampling serialize on one mutex — both are rare; the publish path never
/// touches it.
class Profiler {
 public:
  /// Reserved label ids, interned at construction: 0 renders as "-" (no
  /// label), 1 is the pools' default "task" label.
  static constexpr std::uint32_t kNoLabel = 0;
  static constexpr std::uint32_t kTaskLabel = 1;

  /// Never destroyed (leaked singleton): worker threads may release slots
  /// during static teardown, after function-local statics are gone.
  static Profiler& instance();

  /// Registers (or revives) the slot named `name`. An inactive slot with
  /// the same name is reused, so repeated pool construction in one process
  /// keeps the slot set — and the folded key set — stable. Returns nullptr
  /// under PDCKIT_OBS_NOOP.
  WorkerSlot* register_worker(std::string name);

  /// Marks the slot inactive (skipped by samplers). The slot memory stays
  /// valid forever; a later register_worker with the same name revives it.
  void release_worker(WorkerSlot* slot);

  /// Binds `slot` as the calling thread's current slot (nullptr unbinds),
  /// making it reachable via current_slot() for ProfiledTask and the pool
  /// publish helpers.
  static void bind_current_thread(WorkerSlot* slot) {
    detail::t_profile_slot = slot;
  }
  [[nodiscard]] static WorkerSlot* current_slot() {
    return detail::t_profile_slot;
  }

  /// Interns `label`, returning a stable small id for publish(). Call once
  /// per site and cache (PDC_PROFILE_TASK does).
  std::uint32_t intern_label(std::string_view label);

  /// Takes one sample of every active slot into the global accumulation.
  void sample_once();

  /// Samples every active slot into `folded` (one count per slot). Used by
  /// sample_once and by collect windows that want their own accumulator.
  void sample_into(FoldedProfile& folded);

  /// Wall-clock background sampler at `period_us` (default 1 ms = 1 kHz).
  /// No-op if already running. stop() joins; call it before process exit.
  void start(std::uint64_t period_us = 1000);
  void stop();
  [[nodiscard]] bool running() const;

  /// Deterministic sampler body for a SimScheduler logical thread: parks
  /// `period_seconds` of virtual time, samples, repeats until `done()`.
  /// Fixed seed + fixed workload ⇒ byte-stable folded().
  void run_sim_sampler(double period_seconds,
                       const std::function<bool()>& done);

  /// Samples inline for `duration_ms` of wall time at `period_us` and
  /// returns just that window's folded text (the global accumulation is
  /// untouched) — the /profile?ms=N collect-then-respond body.
  [[nodiscard]] std::string collect(std::uint64_t duration_ms,
                                    std::uint64_t period_us = 1000);

  /// Clears the global folded accumulation and sample count; slots and
  /// interned labels survive (so a second fixed-seed run reproduces the
  /// first byte-for-byte).
  void reset();

  [[nodiscard]] std::uint64_t samples() const;

  /// flamegraph.pl-compatible folded stacks of the global accumulation:
  /// one `key count\n` line per stack, sorted by key.
  [[nodiscard]] std::string folded() const;

  /// {"samples":N,"folded":{"key":count,...}} of the global accumulation.
  [[nodiscard]] std::string to_json() const;

 private:
  Profiler();
  ~Profiler() = default;  // never runs; the instance is leaked

  void sample_into_locked(FoldedProfile& folded);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::string> labels_;  // id → text
  std::map<std::string, std::uint32_t, std::less<>> label_ids_;
  FoldedProfile folded_;
  std::uint64_t samples_ = 0;
  std::thread sampler_;
  std::atomic<bool> sampling_{false};
  std::uint64_t period_us_ = 1000;
};

/// Publishes a worker-state transition for the calling thread's bound
/// slot, if any — the pools' steal/park hook (their per-task hook caches
/// the slot pointer instead; see worker_loop).
inline void publish_worker_state(WorkerState state,
                                 std::uint32_t label_id = 0) {
  if constexpr (kObsEnabled) {
    if (WorkerSlot* slot = Profiler::current_slot(); slot != nullptr) {
      slot->publish(state, label_id);
    }
  } else {
    (void)state;
    (void)label_id;
  }
}

/// Scoped task label: publishes running/<label> to the calling thread's
/// slot on construction and restores the previous word on destruction —
/// the advertised per-task "plain store pair". Nested scopes restore
/// correctly; a thread with no bound slot (external helper, NOOP build)
/// pays one thread-local read.
class ProfiledTask {
 public:
  explicit ProfiledTask(std::uint32_t label_id) noexcept {
    if constexpr (kObsEnabled) {
      slot_ = Profiler::current_slot();
      if (slot_ != nullptr) {
        prev_ = slot_->word();
        slot_->publish(WorkerState::kRunning, label_id);
      }
    } else {
      (void)label_id;
    }
  }
  ~ProfiledTask() {
    if constexpr (kObsEnabled) {
      if (slot_ != nullptr) slot_->restore(prev_);
    }
  }
  ProfiledTask(const ProfiledTask&) = delete;
  ProfiledTask& operator=(const ProfiledTask&) = delete;

 private:
  WorkerSlot* slot_ = nullptr;
  std::uint64_t prev_ = 0;
};

/// One blocking primitive's contention identity: a name plus the file:line
/// of its declaration, interned into the process-wide site catalog on
/// first construction. record() lands the measured wait (slow path only —
/// never called on an uncontended acquire) in the labeled histogram
/// `pdc.contend.wait_us{site="<name>"}`. Sites are function-local statics
/// inside the primitives (PDC_CONTENTION_SITE), so a site exists only
/// once its lock first contends — deterministic under a fixed-seed sim.
class ContentionSite {
 public:
  ContentionSite(const char* name, const char* file, int line) {
    if constexpr (kObsEnabled) {
      init_slow(name, file, line);
    } else {
      (void)name;
      (void)file;
      (void)line;
    }
  }

  void record(std::uint64_t wait_us) noexcept {
    if constexpr (kObsEnabled) {
      wait_hist_->record(wait_us);
    } else {
      (void)wait_us;
    }
  }

 private:
  void init_slow(const char* name, const char* file, int line);

  Histogram* wait_hist_ = nullptr;
};

/// Catalog lookup: file:line of a registered site name; nullopt for names
/// never registered in this process (e.g. series federated from another
/// rank).
struct SiteLocation {
  std::string file;
  int line = 0;
};
[[nodiscard]] std::optional<SiteLocation> contention_site_location(
    std::string_view name);

/// One row of the top-k most-contended view, derived from a snapshot's
/// `pdc.contend.wait_us{site=}` family.
struct ContentionStat {
  std::string site;
  std::uint64_t count = 0;          // contended acquires
  std::uint64_t total_wait_us = 0;  // histogram sum
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::string file;  // empty when the site is not in this process's catalog
  int line = 0;
};

/// Ranks contention sites in `snapshot` by total wait (descending; name
/// breaks ties), truncated to `k`. Only series whose labels are exactly
/// {site} are considered, so a federated snapshot contributes its
/// fleet-wide aggregates, not the per-rank stamped duplicates.
[[nodiscard]] std::vector<ContentionStat> contention_topk(
    const MetricsSnapshot& snapshot, std::size_t k);

/// {"top":[{"site":...,"count":...,"total_wait_us":...,...},...]} — the
/// /profile/contention body.
[[nodiscard]] std::string contention_json(
    const std::vector<ContentionStat>& stats);

/// Generic top-k by value (descending; key breaks ties) — shared by the
/// contention view and the aggregator's /metrics/topk.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
top_k_by_value(std::vector<std::pair<std::string, std::uint64_t>> entries,
               std::size_t k);

/// Parses flamegraph-folded text (`key count` per line) into a
/// FoldedProfile, summing duplicate keys and skipping malformed lines
/// (error bodies from a NOOP rank parse as empty).
[[nodiscard]] FoldedProfile parse_folded(std::string_view text);

/// Inverse of parse_folded: one `key count\n` line per entry, sorted.
[[nodiscard]] std::string render_folded(const FoldedProfile& folded);

#ifdef PDCKIT_OBS_NOOP

#define PDC_CONTENTION_SITE(site_name)                     \
  ([]() -> ::pdc::obs::ContentionSite& {                   \
    static ::pdc::obs::ContentionSite pdc_contention_site_{\
        site_name, __FILE__, __LINE__};                    \
    return pdc_contention_site_;                           \
  }())
#define PDC_PROFILE_TASK(label) ((void)0)

#else

/// Per-call-site contention identity (lazy static, registered once).
#define PDC_CONTENTION_SITE(site_name)                     \
  ([]() -> ::pdc::obs::ContentionSite& {                   \
    static ::pdc::obs::ContentionSite pdc_contention_site_{\
        site_name, __FILE__, __LINE__};                    \
    return pdc_contention_site_;                           \
  }())

/// Labels the rest of the enclosing scope for the sampling profiler:
/// interns `label` once per call site, then publishes running/<label> for
/// the scope's duration (restoring the previous state on exit). At most
/// one per scope.
#define PDC_PROFILE_TASK(label)                               \
  static const std::uint32_t pdc_profile_label_ =             \
      ::pdc::obs::Profiler::instance().intern_label(label);   \
  ::pdc::obs::ProfiledTask pdc_profile_scope_ {               \
    pdc_profile_label_                                        \
  }

#endif  // PDCKIT_OBS_NOOP

}  // namespace pdc::obs
