#include "obs/replay.hpp"

#include <fstream>

#include "obs/trace.hpp"

namespace pdc::obs {

bool ReplayDump::write_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace;
  return static_cast<bool>(out);
}

ReplayDump replay_with_trace(const testkit::ScheduleExplorer& explorer,
                             std::uint64_t seed,
                             const std::function<testkit::RunPlan()>& make_run) {
  ReplayDump dump;
  TraceCollector collector;
  collector.start();
  dump.report = explorer.replay(seed, make_run, &dump.failure);
  collector.stop();
  dump.chrome_trace = collector.chrome_trace_json();
  dump.minimal_trace = dump.report.format_minimal_trace();
  return dump;
}

ReplayDump explore_and_dump(const testkit::ScheduleExplorer& explorer,
                            const std::function<testkit::RunPlan()>& make_run) {
  const testkit::ExplorationResult result = explorer.explore(make_run);
  if (!result.failure_found) {
    ReplayDump dump;
    dump.report = result.failing_report;
    return dump;
  }
  return replay_with_trace(explorer, result.failing_seed, make_run);
}

}  // namespace pdc::obs
