// BenchReport: structured JSON output for the plain-main bench runners.
//
// The google-benchmark binaries already speak --benchmark_format=json;
// the table-printing runners (bench/fig*, bench/table*, most lab_* and
// perf_*) get this writer instead. A runner builds its TextTables as
// before, adds each to a BenchReport, and calls write() at exit:
//
//   obs::BenchReport report("perf_dist_coord");
//   ...
//   report.add_table(table);          // alongside table.render(std::cout)
//   report.add_metric("ranks", 8.0);
//   report.write_if_requested();      // honours PDCKIT_BENCH_JSON
//
// write_if_requested() writes JSON to the path named by the
// PDCKIT_BENCH_JSON environment variable (or stdout for "-") and is a
// no-op when the variable is unset, so interactive runs stay table-only
// while bench/run_all.sh harvests machine-readable BENCH_*.json files.
// The report also embeds a MetricsRegistry scrape so every bench run
// carries the library's own counters with it.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "support/table.hpp"

namespace pdc::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Snapshots the table's title/header/rows (call after the rows exist).
  void add_table(const support::TextTable& table);

  /// Free-form scalar result (wall seconds, speedup, throughput...).
  void add_metric(std::string name, double value);

  /// Serializes name, tables, metrics, and a MetricsRegistry scrape.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to the file named by $PDCKIT_BENCH_JSON ("-" for
  /// stdout). Returns false when the variable is unset or the write
  /// failed; diagnostics go to stderr.
  bool write_if_requested() const;

 private:
  struct TableCopy {
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::vector<TableCopy> tables_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace pdc::obs
