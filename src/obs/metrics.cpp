#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace pdc::obs {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

std::string MetricKey::canonical() const {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char ch : v) {
      switch (ch) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += ch;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

void MetricKey::canonicalize() {
  std::stable_sort(
      labels.begin(), labels.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  labels.erase(std::unique(labels.begin(), labels.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               labels.end());
}

void MetricKey::add_label_if_absent(std::string_view key,
                                    std::string_view value) {
  for (const auto& [k, v] : labels) {
    if (k == key) return;
  }
  labels.emplace_back(std::string(key), std::string(value));
  canonicalize();
}

std::optional<MetricKey> MetricKey::parse(std::string_view text) {
  MetricKey key;
  const std::size_t brace = text.find('{');
  if (brace == std::string_view::npos) {
    key.name = std::string(text);
    return key;
  }
  key.name = std::string(text.substr(0, brace));
  std::size_t i = brace + 1;
  if (i < text.size() && text[i] == '}') {
    if (i + 1 != text.size()) return std::nullopt;
    return key;
  }
  while (i < text.size()) {
    const std::size_t eq = text.find('=', i);
    if (eq == std::string_view::npos || eq == i) return std::nullopt;
    std::string label_key(text.substr(i, eq - i));
    if (label_key.find_first_of(",{}\"") != std::string::npos) {
      return std::nullopt;
    }
    if (eq + 1 >= text.size() || text[eq + 1] != '"') return std::nullopt;
    std::string value;
    std::size_t j = eq + 2;
    bool closed = false;
    while (j < text.size()) {
      const char ch = text[j];
      if (ch == '\\') {
        if (j + 1 >= text.size()) return std::nullopt;
        const char esc = text[j + 1];
        if (esc == 'n') {
          value += '\n';
        } else if (esc == '"' || esc == '\\') {
          value += esc;
        } else {
          return std::nullopt;
        }
        j += 2;
      } else if (ch == '"') {
        closed = true;
        ++j;
        break;
      } else {
        value += ch;
        ++j;
      }
    }
    if (!closed) return std::nullopt;
    key.labels.emplace_back(std::move(label_key), std::move(value));
    if (j >= text.size()) return std::nullopt;
    if (text[j] == ',') {
      i = j + 1;
      continue;
    }
    if (text[j] == '}' && j + 1 == text.size()) {
      key.canonicalize();
      return key;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}

}  // namespace detail

double Histogram::bucket_upper(std::size_t b) noexcept {
  if (b + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(b));  // 2^b
}

double histogram_quantile(const std::uint64_t* buckets, std::size_t n_buckets,
                          std::uint64_t count, double q) {
  if (count == 0 || n_buckets == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= target) {
      const double lower =
          b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      if (b + 1 >= kHistogramBuckets) return lower;  // unbounded tail
      const double upper = std::ldexp(1.0, static_cast<int>(b));
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(buckets[b]);
      return lower + (upper - lower) * frac;
    }
    seen += buckets[b];
  }
  // Counts inconsistent with the rank (racing scrape): report the top edge.
  return std::ldexp(1.0, static_cast<int>(n_buckets - 1));
}

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

double Histogram::Snapshot::quantile(double q) const {
  return histogram_quantile(buckets.data(), buckets.size(), count, q);
}

Histogram::Snapshot& Histogram::Snapshot::merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] += other.buckets[b];
  }
  return *this;
}

double MetricSample::quantile(double q) const {
  if (kind != MetricKind::kHistogram) return 0.0;
  return histogram_quantile(buckets.data(), buckets.size(), count, q);
}

double Histogram::Snapshot::quantile_upper(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) return bucket_upper(b);
  }
  return bucket_upper(kHistogramBuckets - 1);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

template <typename T>
T& intern_flat(std::map<MetricKey, std::unique_ptr<T>, MetricKeyLess>& map,
               std::string_view name) {
  auto it = map.find(name);  // transparent: no MetricKey built on the hit path
  if (it == map.end()) {
    it = map.emplace(MetricKey{std::string(name), {}}, std::make_unique<T>())
             .first;
  }
  return *it->second;
}

template <typename T>
T& intern_labeled(std::map<MetricKey, std::unique_ptr<T>, MetricKeyLess>& map,
                  std::string_view name, Labels labels) {
  MetricKey key{std::string(name), std::move(labels)};
  key.canonicalize();
  auto it = map.find(key);
  if (it == map.end()) {
    it = map.emplace(std::move(key), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  return intern_flat(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  return intern_flat(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  return intern_flat(histograms_, name);
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::scoped_lock lock(mutex_);
  return intern_labeled(counters_, name, std::move(labels));
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::scoped_lock lock(mutex_);
  return intern_labeled(gauges_, name, std::move(labels));
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  std::scoped_lock lock(mutex_);
  return intern_labeled(histograms_, name, std::move(labels));
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MetricsSnapshot out;
  std::scoped_lock lock(mutex_);
  out.samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    MetricSample s;
    s.name = key.canonical();
    s.base = key.name;
    s.labels = key.labels;
    s.kind = MetricKind::kCounter;
    s.count = c->total();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSample s;
    s.name = key.canonical();
    s.base = key.name;
    s.labels = key.labels;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    s.high_water = g->high_water();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    const auto snap = h->snapshot();
    MetricSample s;
    s.name = key.canonical();
    s.base = key.name;
    s.labels = key.labels;
    s.kind = MetricKind::kHistogram;
    s.count = snap.count;
    s.sum = snap.sum;
    s.buckets.assign(snap.buckets.begin(), snap.buckets.end());
    while (!s.buckets.empty() && s.buckets.back() == 0) s.buckets.pop_back();
    out.samples.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricSample* s = find(name);
  if (s == nullptr) return 0;
  if (s->kind == MetricKind::kGauge) {
    return s->value < 0 ? 0 : static_cast<std::uint64_t>(s->value);
  }
  return s->count;
}

namespace {

/// Inner text of a canonical label block (no braces): `k="v",k2="v2"`.
std::string label_block(const Labels& labels) {
  if (labels.empty()) return {};
  const std::string text = MetricKey{"", labels}.canonical();
  return text.substr(1, text.size() - 2);
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  const auto emit_kind = [&](const char* key, MetricKind kind,
                             auto&& emit_value) {
    append_json_string(out, key);
    out += ":{";
    bool first = true;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (samples[i].kind != kind) continue;
      // Samples of one kind are sorted by (base, labels), so a family is a
      // contiguous run of equal bases.
      std::size_t j = i + 1;
      while (j < samples.size() && samples[j].kind == kind &&
             samples[j].base == samples[i].base) {
        ++j;
      }
      if (!first) out += ',';
      first = false;
      append_json_string(out, samples[i].base);
      out += ':';
      if (j == i + 1 && samples[i].labels.empty()) {
        emit_value(samples[i]);  // plain series keep the flat PR-4 shape
      } else {
        out += '{';
        for (std::size_t k = i; k < j; ++k) {
          if (k != i) out += ',';
          append_json_string(out, label_block(samples[k].labels));
          out += ':';
          emit_value(samples[k]);
        }
        out += '}';
      }
      i = j - 1;
    }
    out += '}';
  };
  emit_kind("counters", MetricKind::kCounter,
            [&](const MetricSample& s) { out += std::to_string(s.count); });
  out += ',';
  emit_kind("gauges", MetricKind::kGauge, [&](const MetricSample& s) {
    out += "{\"value\":" + std::to_string(s.value) +
           ",\"high_water\":" + std::to_string(s.high_water) + '}';
  });
  out += ',';
  emit_kind("histograms", MetricKind::kHistogram, [&](const MetricSample& s) {
    out += "{\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + std::to_string(s.sum) + ",\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(s.buckets[i]);
    }
    out += "],\"p50\":" + format_double(s.quantile(0.5)) +
           ",\"p90\":" + format_double(s.quantile(0.9)) +
           ",\"p99\":" + format_double(s.quantile(0.99)) + '}';
  });
  out += '}';
  return out;
}

void MetricsSnapshot::render(std::ostream& os) const {
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        if (s.count == 0) continue;
        os << s.name << " = " << s.count << '\n';
        break;
      case MetricKind::kGauge:
        if (s.value == 0 && s.high_water == 0) continue;
        os << s.name << " = " << s.value << " (high water " << s.high_water
           << ")\n";
        break;
      case MetricKind::kHistogram: {
        if (s.count == 0) continue;
        const double mean =
            static_cast<double>(s.sum) / static_cast<double>(s.count);
        os << s.name << ": count=" << s.count << " sum=" << s.sum
           << " mean=" << mean << " p50=" << format_double(s.quantile(0.5))
           << " p90=" << format_double(s.quantile(0.9))
           << " p99=" << format_double(s.quantile(0.99)) << '\n';
        break;
      }
    }
  }
}

std::string MetricsSnapshot::to_wire() const {
  std::string out = "pdcwire 1\n";
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "c ";
        append_json_string(out, s.name);
        out += ' ';
        out += std::to_string(s.count);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "g ";
        append_json_string(out, s.name);
        out += ' ';
        out += std::to_string(s.value);
        out += ' ';
        out += std::to_string(s.high_water);
        out += '\n';
        break;
      case MetricKind::kHistogram:
        out += "h ";
        append_json_string(out, s.name);
        out += ' ';
        out += std::to_string(s.count);
        out += ' ';
        out += std::to_string(s.sum);
        out += ' ';
        out += std::to_string(s.buckets.size());
        for (const std::uint64_t b : s.buckets) {
          out += ' ';
          out += std::to_string(b);
        }
        out += '\n';
        break;
    }
  }
  return out;
}

namespace {

bool parse_quoted(std::string_view line, std::size_t& i, std::string& out) {
  if (i >= line.size() || line[i] != '"') return false;
  ++i;
  while (i < line.size()) {
    const char ch = line[i];
    if (ch == '\\') {
      if (i + 1 >= line.size()) return false;
      switch (line[i + 1]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: return false;
      }
      i += 2;
    } else if (ch == '"') {
      ++i;
      return true;
    } else {
      out += ch;
      ++i;
    }
  }
  return false;
}

template <typename Int>
bool parse_int(std::string_view line, std::size_t& i, Int& out) {
  if (i >= line.size() || line[i] != ' ') return false;
  ++i;
  const auto [ptr, ec] =
      std::from_chars(line.data() + i, line.data() + line.size(), out);
  if (ec != std::errc{}) return false;
  i = static_cast<std::size_t>(ptr - line.data());
  return true;
}

}  // namespace

std::optional<MetricsSnapshot> MetricsSnapshot::from_wire(
    std::string_view wire) {
  MetricsSnapshot out;
  bool saw_header = false;
  std::size_t start = 0;
  while (start <= wire.size()) {
    if (start == wire.size()) break;
    std::size_t end = wire.find('\n', start);
    if (end == std::string_view::npos) end = wire.size();
    const std::string_view line = wire.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != "pdcwire 1") return std::nullopt;
      saw_header = true;
      continue;
    }
    const char kind = line[0];
    std::size_t i = 1;
    if (i >= line.size() || line[i] != ' ') return std::nullopt;
    ++i;
    std::string name;
    if (!parse_quoted(line, i, name)) return std::nullopt;
    auto key = MetricKey::parse(name);
    if (!key) return std::nullopt;
    MetricSample s;
    s.name = std::move(name);
    s.base = std::move(key->name);
    s.labels = std::move(key->labels);
    switch (kind) {
      case 'c':
        s.kind = MetricKind::kCounter;
        if (!parse_int(line, i, s.count)) return std::nullopt;
        break;
      case 'g':
        s.kind = MetricKind::kGauge;
        if (!parse_int(line, i, s.value)) return std::nullopt;
        if (!parse_int(line, i, s.high_water)) return std::nullopt;
        break;
      case 'h': {
        s.kind = MetricKind::kHistogram;
        std::size_t n_buckets = 0;
        if (!parse_int(line, i, s.count)) return std::nullopt;
        if (!parse_int(line, i, s.sum)) return std::nullopt;
        if (!parse_int(line, i, n_buckets)) return std::nullopt;
        if (n_buckets > kHistogramBuckets) return std::nullopt;
        s.buckets.resize(n_buckets);
        for (std::size_t b = 0; b < n_buckets; ++b) {
          if (!parse_int(line, i, s.buckets[b])) return std::nullopt;
        }
        break;
      }
      default:
        return std::nullopt;
    }
    if (i != line.size()) return std::nullopt;
    out.samples.push_back(std::move(s));
  }
  if (!saw_header) return std::nullopt;
  return out;
}

}  // namespace pdc::obs
