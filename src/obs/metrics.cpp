#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace pdc::obs {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return mine;
}

}  // namespace detail

double Histogram::bucket_upper(std::size_t b) noexcept {
  if (b + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(b));  // 2^b
}

double histogram_quantile(const std::uint64_t* buckets, std::size_t n_buckets,
                          std::uint64_t count, double q) {
  if (count == 0 || n_buckets == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= target) {
      const double lower =
          b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      if (b + 1 >= kHistogramBuckets) return lower;  // unbounded tail
      const double upper = std::ldexp(1.0, static_cast<int>(b));
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(buckets[b]);
      return lower + (upper - lower) * frac;
    }
    seen += buckets[b];
  }
  // Counts inconsistent with the rank (racing scrape): report the top edge.
  return std::ldexp(1.0, static_cast<int>(n_buckets - 1));
}

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  return buf;
}

double Histogram::Snapshot::quantile(double q) const {
  return histogram_quantile(buckets.data(), buckets.size(), count, q);
}

double MetricSample::quantile(double q) const {
  if (kind != MetricKind::kHistogram) return 0.0;
  return histogram_quantile(buckets.data(), buckets.size(), count, q);
}

double Histogram::Snapshot::quantile_upper(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target) return bucket_upper(b);
  }
  return bucket_upper(kHistogramBuckets - 1);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::scrape() const {
  MetricsSnapshot out;
  std::scoped_lock lock(mutex_);
  out.samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.count = c->total();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    s.high_water = g->high_water();
    out.samples.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    const auto snap = h->snapshot();
    MetricSample s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = snap.count;
    s.sum = snap.sum;
    s.buckets.assign(snap.buckets.begin(), snap.buckets.end());
    while (!s.buckets.empty() && s.buckets.back() == 0) s.buckets.pop_back();
    out.samples.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  const MetricSample* s = find(name);
  if (s == nullptr) return 0;
  if (s->kind == MetricKind::kGauge) {
    return s->value < 0 ? 0 : static_cast<std::uint64_t>(s->value);
  }
  return s->count;
}

namespace {

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{";
  const auto emit_kind = [&](const char* key, MetricKind kind,
                             auto&& emit_value) {
    append_json_string(out, key);
    out += ":{";
    bool first = true;
    for (const auto& s : samples) {
      if (s.kind != kind) continue;
      if (!first) out += ',';
      first = false;
      append_json_string(out, s.name);
      out += ':';
      emit_value(s);
    }
    out += '}';
  };
  emit_kind("counters", MetricKind::kCounter,
            [&](const MetricSample& s) { out += std::to_string(s.count); });
  out += ',';
  emit_kind("gauges", MetricKind::kGauge, [&](const MetricSample& s) {
    out += "{\"value\":" + std::to_string(s.value) +
           ",\"high_water\":" + std::to_string(s.high_water) + '}';
  });
  out += ',';
  emit_kind("histograms", MetricKind::kHistogram, [&](const MetricSample& s) {
    out += "{\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + std::to_string(s.sum) + ",\"buckets\":[";
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(s.buckets[i]);
    }
    out += "],\"p50\":" + format_double(s.quantile(0.5)) +
           ",\"p90\":" + format_double(s.quantile(0.9)) +
           ",\"p99\":" + format_double(s.quantile(0.99)) + '}';
  });
  out += '}';
  return out;
}

void MetricsSnapshot::render(std::ostream& os) const {
  for (const auto& s : samples) {
    switch (s.kind) {
      case MetricKind::kCounter:
        if (s.count == 0) continue;
        os << s.name << " = " << s.count << '\n';
        break;
      case MetricKind::kGauge:
        if (s.value == 0 && s.high_water == 0) continue;
        os << s.name << " = " << s.value << " (high water " << s.high_water
           << ")\n";
        break;
      case MetricKind::kHistogram: {
        if (s.count == 0) continue;
        const double mean =
            static_cast<double>(s.sum) / static_cast<double>(s.count);
        os << s.name << ": count=" << s.count << " sum=" << s.sum
           << " mean=" << mean << " p50=" << format_double(s.quantile(0.5))
           << " p90=" << format_double(s.quantile(0.9))
           << " p99=" << format_double(s.quantile(0.99)) << '\n';
        break;
      }
    }
  }
}

}  // namespace pdc::obs
