#include "obs/telemetry.hpp"

#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "net/framing.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pdc::obs {

namespace {

std::string sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    out += ok ? ch : '_';
  }
  return out;
}

/// Exposition label text (no braces): keys sanitized like metric names,
/// values escaped per the Prometheus text format.
std::string exposition_labels(const Labels& labels) {
  std::string out;
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += sanitize_name(k);
    out += "=\"";
    for (char ch : v) {
      switch (ch) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += ch;
      }
    }
    out += '"';
  }
  return out;
}

/// `name`, `name{labels}`, or `name{labels,extra}` — `extra` carries the
/// reserved le/quantile pair, appended after the series' own labels.
std::string series_ref(const std::string& name, const std::string& labels,
                       const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

constexpr const char kProfilingDisabledJson[] =
    "{\"error\":\"profiling disabled (PDCKIT_OBS_NOOP)\"}\n";

// One shape for the whole /trace family (including /trace/stream): a NOOP
// build answers every tracing endpoint with this body, so clients need a
// single "{\"error\"" check instead of per-endpoint shapes.
constexpr const char kTracingDisabledJson[] =
    "{\"error\":\"tracing disabled (PDCKIT_OBS_NOOP)\"}\n";

}  // namespace

std::string endpoint_query(const std::string& endpoint,
                           std::string_view key) {
  const std::size_t q = endpoint.find('?');
  if (q == std::string::npos) return {};
  std::size_t pos = q + 1;
  while (pos < endpoint.size()) {
    std::size_t amp = endpoint.find('&', pos);
    if (amp == std::string::npos) amp = endpoint.size();
    const std::string_view pair =
        std::string_view(endpoint).substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return {};
}

std::uint64_t endpoint_query_u64(const std::string& endpoint,
                                 std::string_view key,
                                 std::uint64_t fallback) {
  const std::string value = endpoint_query(endpoint, key);
  if (value.empty()) return fallback;
  std::uint64_t out = 0;
  for (char ch : value) {
    if (ch < '0' || ch > '9') return fallback;
    out = out * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return out;
}

std::string prometheus_exposition(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  const auto& samples = snapshot.samples;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // A family — one base name, every labeled series — is a contiguous run
    // (snapshot sort order) and gets a single # TYPE header.
    std::size_t j = i + 1;
    while (j < samples.size() && samples[j].kind == samples[i].kind &&
           samples[j].base == samples[i].base) {
      ++j;
    }
    const std::string name = sanitize_name(samples[i].base);
    switch (samples[i].kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (std::size_t k = i; k < j; ++k) {
          out += series_ref(name, exposition_labels(samples[k].labels)) + " " +
                 std::to_string(samples[k].count) + "\n";
        }
        break;
      case MetricKind::kGauge: {
        out += "# TYPE " + name + " gauge\n";
        for (std::size_t k = i; k < j; ++k) {
          out += series_ref(name, exposition_labels(samples[k].labels)) + " " +
                 std::to_string(samples[k].value) + "\n";
        }
        out += "# TYPE " + name + "_high_water gauge\n";
        for (std::size_t k = i; k < j; ++k) {
          out += series_ref(name + "_high_water",
                            exposition_labels(samples[k].labels)) +
                 " " + std::to_string(samples[k].high_water) + "\n";
        }
        break;
      }
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        for (std::size_t k = i; k < j; ++k) {
          const MetricSample& s = samples[k];
          const std::string labels = exposition_labels(s.labels);
          std::uint64_t cum = 0;
          for (std::size_t b = 0; b < s.buckets.size(); ++b) {
            const double upper = Histogram::bucket_upper(b);
            cum += s.buckets[b];
            // The unbounded tail (if ever populated) is covered by +Inf.
            if (std::isinf(upper)) continue;
            out += series_ref(name + "_bucket", labels,
                              "le=\"" + format_double(upper) + "\"") +
                   " " + std::to_string(cum) + "\n";
          }
          out += series_ref(name + "_bucket", labels, "le=\"+Inf\"") + " " +
                 std::to_string(s.count) + "\n";
          out += series_ref(name + "_sum", labels) + " " +
                 std::to_string(s.sum) + "\n";
          out += series_ref(name + "_count", labels) + " " +
                 std::to_string(s.count) + "\n";
          for (const auto& [q, label] :
               {std::pair<double, const char*>{0.5, "0.5"},
                {0.9, "0.9"},
                {0.99, "0.99"}}) {
            out += series_ref(name, labels,
                              std::string("quantile=\"") + label + "\"") +
                   " " + format_double(s.quantile(q)) + "\n";
          }
        }
        break;
      }
    }
    i = j - 1;
  }
  return out;
}

std::string delta_json(const MetricsSnapshot& prev, const MetricsSnapshot& cur,
                       std::uint64_t cursor, std::string_view filter) {
  const auto matches = [&](const MetricSample& s) {
    return filter.empty() || s.name.compare(0, filter.size(), filter) == 0;
  };
  std::string out = "{\"cursor\":" + std::to_string(cursor) + ",\"counters\":{";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& s : cur.samples) {
    if (s.kind != MetricKind::kCounter || !matches(s)) continue;
    const MetricSample* p = prev.find(s.name);
    const std::uint64_t before = p != nullptr ? p->count : 0;
    if (s.count == before) continue;
    comma();
    // Canonical names can contain quotes (labels) — always escape.
    append_json_string(out, s.name);
    out += ':' + std::to_string(s.count - before);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& s : cur.samples) {
    if (s.kind != MetricKind::kGauge || !matches(s)) continue;
    comma();
    append_json_string(out, s.name);
    out += ":{\"value\":" + std::to_string(s.value) +
           ",\"high_water\":" + std::to_string(s.high_water) + '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& s : cur.samples) {
    if (s.kind != MetricKind::kHistogram || !matches(s)) continue;
    const MetricSample* p = prev.find(s.name);
    const std::uint64_t count_before = p != nullptr ? p->count : 0;
    const std::uint64_t sum_before = p != nullptr ? p->sum : 0;
    if (s.count == count_before) continue;
    comma();
    // Quantiles are over the cumulative distribution (buckets cannot be
    // diffed meaningfully once a scrape races updates), deltas over
    // count/sum.
    append_json_string(out, s.name);
    out += ":{\"count\":" + std::to_string(s.count - count_before) +
           ",\"sum\":" + std::to_string(s.sum - sum_before) +
           ",\"p50\":" + format_double(s.quantile(0.5)) +
           ",\"p90\":" + format_double(s.quantile(0.9)) +
           ",\"p99\":" + format_double(s.quantile(0.99)) + '}';
  }
  out += "}}";
  return out;
}

TelemetryServer::TelemetryServer(net::Network& net, int host,
                                 std::uint16_t port, TelemetryConfig config)
    : registry_(config.registry) {
  // Self-metrics are registered eagerly so the *first* scrape already
  // lists them: a lazy first-bump-after-render would make consecutive
  // fixed-seed runs disagree on the metric set and break the golden
  // exposition (see header contract). They always live in the process-wide
  // registry, even when this server serves a custom one.
  if constexpr (kObsEnabled) {
    auto& registry = MetricsRegistry::instance();
    registry.counter("pdc.telemetry.requests");
    registry.counter("pdc.telemetry.pushes");
    registry.histogram("pdc.telemetry.render_us");
    registry.counter("pdc.trace.stream.chunks");
    registry.counter("pdc.trace.stream.events");
    registry.counter("pdc.trace.stream.dropped");
  }
  net::ServerConfig server_config;
  server_config.model = config.model;
  server_config.workers = config.workers;
  server_config.raw_handler = [this](const net::Bytes& request,
                                     net::StreamSocket& socket) {
    return handle_stream(request, socket);
  };
  server_ = std::make_unique<net::Server>(
      net, host, port,
      [this](const net::Bytes& request) { return handle(request); },
      server_config);
}

TelemetryServer::~TelemetryServer() { stop(); }

net::Address TelemetryServer::address() const { return server_->address(); }

void TelemetryServer::attach_collector(const TraceCollector* collector) {
  collector_.store(collector, std::memory_order_release);
}

void TelemetryServer::attach_spans(const SpanCollector* spans) {
  spans_.store(spans, std::memory_order_release);
}

void TelemetryServer::stop() { server_->stop(); }

MetricsRegistry& TelemetryServer::registry() const {
  return registry_ != nullptr ? *registry_ : MetricsRegistry::instance();
}

std::string TelemetryServer::endpoint_body(const std::string& endpoint) {
  if (endpoint == "/healthz") return "ok\n";
  if (endpoint == "/metrics") {
    return prometheus_exposition(registry().scrape());
  }
  if (endpoint == "/metrics.json") {
    std::string body = registry().scrape().to_json();
    // Exemplar splice: with a span collector attached, the scrape carries
    // the trace ids pinned to each pdc.trace.root_us bucket — the jump
    // from a histogram percentile to a concrete /trace/byid lookup.
    const SpanCollector* spans = spans_.load(std::memory_order_acquire);
    if (kObsEnabled && spans != nullptr && !body.empty() &&
        body.back() == '}') {
      body.pop_back();
      body += ",\"exemplars\":" + spans->exemplars_json() + "}";
    }
    return body;
  }
  if (endpoint == "/metrics.wire") {
    return registry().scrape().to_wire();
  }
  if (endpoint == "reset") {
    registry().reset();
    return "ok\n";
  }
  if (endpoint == "snapshot-now") {
    // An immediate scrape, bypassing whatever cadence the operator tier
    // polls at; body matches /metrics.json so consumers share a parser.
    return registry().scrape().to_json();
  }
  if (endpoint == "/trace") {
    if (!kObsEnabled) return kTracingDisabledJson;
    const TraceCollector* collector =
        collector_.load(std::memory_order_acquire);
    if (collector == nullptr) {
      return "{\"error\":\"no trace collector attached\"}\n";
    }
    if (collector->running()) {
      return "{\"error\":\"trace collector still running\",\"hint\":\"use "
             "/trace/stream <frames> [interval_ms] for live events, or stop "
             "the collector for a full dump\"}\n";
    }
    return collector->chrome_trace_json();
  }
  // Longer prefix first: "/trace/slowest?..." must not swallow the .wire
  // form (and vice versa would, since both share the /trace/slowest stem).
  if (endpoint == "/trace/slowest.wire" ||
      endpoint.rfind("/trace/slowest.wire?", 0) == 0) {
    if (!kObsEnabled) return kTracingDisabledJson;
    const SpanCollector* spans = spans_.load(std::memory_order_acquire);
    if (spans == nullptr) return "{\"error\":\"no span collector attached\"}\n";
    const std::uint64_t n = endpoint_query_u64(endpoint, "n", 8);
    return spans->slowest_wire(static_cast<std::size_t>(n));
  }
  if (endpoint == "/trace/slowest" ||
      endpoint.rfind("/trace/slowest?", 0) == 0) {
    if (!kObsEnabled) return kTracingDisabledJson;
    const SpanCollector* spans = spans_.load(std::memory_order_acquire);
    if (spans == nullptr) return "{\"error\":\"no span collector attached\"}\n";
    const std::uint64_t n = endpoint_query_u64(endpoint, "n", 8);
    return spans->slowest_json(static_cast<std::size_t>(n));
  }
  if (endpoint == "/trace/byid" || endpoint.rfind("/trace/byid?", 0) == 0) {
    if (!kObsEnabled) return kTracingDisabledJson;
    const SpanCollector* spans = spans_.load(std::memory_order_acquire);
    if (spans == nullptr) return "{\"error\":\"no span collector attached\"}\n";
    return spans->byid_json(endpoint_query_u64(endpoint, "id", 0));
  }
  if (endpoint == "/profile/folded") {
    if (!kObsEnabled) return kProfilingDisabledJson;
    return Profiler::instance().folded();
  }
  if (endpoint == "/profile/contention" ||
      endpoint.rfind("/profile/contention?", 0) == 0) {
    if (!kObsEnabled) return kProfilingDisabledJson;
    const std::uint64_t k = endpoint_query_u64(endpoint, "n", 10);
    return contention_json(contention_topk(
               registry().scrape(), static_cast<std::size_t>(k))) +
           "\n";
  }
  if (endpoint == "/profile" || endpoint.rfind("/profile?", 0) == 0) {
    if (!kObsEnabled) return kProfilingDisabledJson;
    // Collect-then-respond: this connection's serving thread samples for
    // the requested window, then replies with just that window's folded
    // stacks (the Profiler's global accumulation is untouched).
    const std::uint64_t ms = endpoint_query_u64(endpoint, "ms", 50);
    const std::uint64_t period = endpoint_query_u64(endpoint, "period_us", 1000);
    return Profiler::instance().collect(ms, period);
  }
  return "error: unknown endpoint '" + endpoint +
         "' (try /metrics, /metrics.json, /metrics.wire, /trace, "
         "/trace/slowest?n=K, /trace/slowest.wire?n=K, /trace/byid?id=N, "
         "/healthz, /profile?ms=N, /profile/folded, /profile/contention?n=K, "
         "reset, snapshot-now, /subscribe <frames> [interval_ms] [filter], "
         "/trace/stream <frames> [interval_ms])\n";
}

net::Bytes TelemetryServer::handle(const net::Bytes& request) {
  const std::uint64_t start = now_us();
  std::string body = endpoint_body(net::to_string(request));
  // Self-accounting strictly after the render: a scrape must never observe
  // its own request (determinism contract in the header).
  PDC_OBS_HIST("pdc.telemetry.render_us", now_us() - start);
  PDC_OBS_COUNT("pdc.telemetry.requests");
  return net::to_bytes(body);
}

bool TelemetryServer::handle_stream(const net::Bytes& request,
                                    net::StreamSocket& socket) {
  const std::string text = net::to_string(request);
  const bool is_subscribe = text.rfind("/subscribe", 0) == 0;
  const bool is_trace_stream = text.rfind("/trace/stream", 0) == 0;
  if (!is_subscribe && !is_trace_stream) return false;
  const char* verb = is_subscribe ? "/subscribe" : "/trace/stream";
  std::istringstream in(text.substr(std::string_view(verb).size()));
  std::uint64_t frames = 0;
  std::uint64_t interval_ms = 0;
  std::string filter;
  const bool got_frames = static_cast<bool>(in >> frames);
  if (!(in >> interval_ms)) {
    // Second token absent or non-numeric: default the interval and let a
    // bare "/subscribe N pdc.pool." treat the token as the filter.
    in.clear();
    interval_ms = 0;
  }
  in >> filter;
  if (!got_frames || frames == 0) {
    (void)net::MessageCodec::send_message(
        socket, net::to_bytes(std::string("error: usage ") + verb +
                              " <frames> [interval_ms]" +
                              (is_subscribe ? " [filter]" : "") + "\n"));
    return true;
  }
  return is_subscribe
             ? stream_subscription(frames, interval_ms, filter, socket)
             : stream_trace(frames, interval_ms, socket);
}

bool TelemetryServer::stream_subscription(std::uint64_t frames,
                                          std::uint64_t interval_ms,
                                          const std::string& filter,
                                          net::StreamSocket& socket) {
  // Per-client cursor state lives right here on the connection's stack:
  // frame 1 diffs against the empty snapshot (= full totals), frame k
  // against what this client saw in frame k-1.
  MetricsSnapshot prev;
  for (std::uint64_t cursor = 1; cursor <= frames; ++cursor) {
    MetricsSnapshot cur = registry().scrape();
    const std::string frame = delta_json(prev, cur, cursor, filter);
    if (!net::MessageCodec::send_message(socket, net::to_bytes(frame))
             .is_ok()) {
      break;  // client went away
    }
    PDC_OBS_COUNT("pdc.telemetry.pushes");
    prev = std::move(cur);
    if (cursor < frames && interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return true;
}

bool TelemetryServer::stream_trace(std::uint64_t frames,
                                   std::uint64_t interval_ms,
                                   net::StreamSocket& socket) {
  if (!kObsEnabled) {
    // Same body the rest of the /trace family returns — one error shape
    // for tracing-off builds regardless of transport (frame vs stream).
    (void)net::MessageCodec::send_message(
        socket, net::to_bytes(std::string(kTracingDisabledJson)));
    return true;
  }
  const TraceCollector* collector = collector_.load(std::memory_order_acquire);
  if (collector == nullptr || !collector->running()) {
    (void)net::MessageCodec::send_message(
        socket, net::to_bytes(std::string(
                    collector == nullptr
                        ? "{\"error\":\"no trace collector attached\"}\n"
                        : "{\"error\":\"trace collector not running\"}\n")));
    return true;
  }
  // The per-client stream position lives on the connection's stack, like
  // the subscription cursor: the collector itself keeps no client state.
  TraceStreamCursor cursor;
  for (std::uint64_t frame_no = 1; frame_no <= frames; ++frame_no) {
    const TraceStreamChunk chunk = collector->stream_chunk(cursor);
    std::string frame = "{\"cursor\":" + std::to_string(frame_no) +
                        ",\"dropped\":" + std::to_string(cursor.dropped) +
                        ",\"events\":[" + chunk.events_json + "]}";
    if (!net::MessageCodec::send_message(socket, net::to_bytes(frame))
             .is_ok()) {
      break;  // client went away
    }
    PDC_OBS_COUNT("pdc.trace.stream.chunks");
    PDC_OBS_COUNT("pdc.trace.stream.events", chunk.events);
    if (chunk.dropped != 0) {
      PDC_OBS_COUNT("pdc.trace.stream.dropped", chunk.dropped);
    }
    if (frame_no < frames && interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return true;
}

support::Status TelemetryClient::connect(const net::Address& server) {
  auto socket = net_.connect(host_, server);
  if (!socket.is_ok()) return socket.status();
  socket_ = std::move(socket).value();
  return support::Status::ok();
}

support::Result<std::string> TelemetryClient::get(const std::string& endpoint) {
  PDC_CHECK_MSG(socket_.valid(), "get before connect");
  if (auto status =
          net::MessageCodec::send_message(socket_, net::to_bytes(endpoint));
      !status.is_ok()) {
    return status;
  }
  auto reply = net::MessageCodec::recv_message(socket_);
  if (!reply.is_ok()) return reply.status();
  return net::to_string(reply.value());
}

support::Status TelemetryClient::subscribe(
    std::size_t frames, std::uint64_t interval_ms,
    const std::function<void(const std::string&)>& on_frame,
    std::string_view filter) {
  PDC_CHECK_MSG(socket_.valid(), "subscribe before connect");
  std::string request = "/subscribe " + std::to_string(frames) + " " +
                        std::to_string(interval_ms);
  if (!filter.empty()) {
    request += ' ';
    request += filter;
  }
  if (auto status =
          net::MessageCodec::send_message(socket_, net::to_bytes(request));
      !status.is_ok()) {
    return status;
  }
  for (std::size_t i = 0; i < frames; ++i) {
    auto frame = net::MessageCodec::recv_message(socket_);
    if (!frame.is_ok()) return frame.status();
    on_frame(net::to_string(frame.value()));
  }
  return support::Status::ok();
}

support::Status TelemetryClient::stream_trace(
    std::size_t frames, std::uint64_t interval_ms,
    const std::function<void(const std::string&)>& on_chunk) {
  PDC_CHECK_MSG(socket_.valid(), "stream_trace before connect");
  const std::string request = "/trace/stream " + std::to_string(frames) + " " +
                              std::to_string(interval_ms);
  if (auto status =
          net::MessageCodec::send_message(socket_, net::to_bytes(request));
      !status.is_ok()) {
    return status;
  }
  for (std::size_t i = 0; i < frames; ++i) {
    auto frame = net::MessageCodec::recv_message(socket_);
    if (!frame.is_ok()) return frame.status();
    const std::string text = net::to_string(frame.value());
    on_chunk(text);
    // A usage/collector problem arrives as a single error frame; stop
    // instead of blocking on frames the server will never push.
    if (text.rfind("{\"error\"", 0) == 0 || text.rfind("error:", 0) == 0) {
      break;
    }
  }
  return support::Status::ok();
}

void TelemetryClient::close() {
  if (socket_.valid()) socket_.close();
}

}  // namespace pdc::obs
