// Physical clock synchronization: Cristian's algorithm and the Berkeley
// algorithm, over simulated drifting clocks.
//
// Logical clocks (clocks.hpp) order events; these bound *physical* skew —
// the other half of the distributed-systems time lecture. The simulation
// gives each node a skewed/drifting clock and a symmetric message delay,
// so the classic accuracy result (error bounded by half the round-trip
// asymmetry) is directly observable.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace pdc::dist {

/// A node's physical clock: true time plus a fixed offset (skew) and a
/// multiplicative drift rate.
class DriftingClock {
 public:
  DriftingClock(double offset_seconds, double drift_rate)
      : offset_(offset_seconds), drift_(drift_rate) {}

  /// Local reading when the true time is `true_time`.
  [[nodiscard]] double read(double true_time) const {
    return true_time * (1.0 + drift_) + offset_;
  }

  /// Applies a correction (what a sync protocol adjusts).
  void adjust(double delta) { offset_ += delta; }

  [[nodiscard]] double offset() const { return offset_; }

 private:
  double offset_;
  double drift_;
};

struct SyncResult {
  double max_error_before = 0.0;  // max |node - reference| pre-sync
  double max_error_after = 0.0;
  std::uint64_t messages = 0;
};

/// Cristian's algorithm: each client asks a time server and sets its clock
/// to server_time + RTT/2. `delay(rng)` models one-way network delay; the
/// residual error is bounded by the delay asymmetry.
/// clocks[0] is the reference server.
SyncResult cristian_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng);

/// Berkeley algorithm: the master polls everyone (RTT-compensated),
/// averages the readings (its own included), and sends each node the delta
/// to the average — no node needs an authoritative source.
/// clocks[0] acts as master; errors are measured against the average.
SyncResult berkeley_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng);

}  // namespace pdc::dist
