// Physical clock synchronization: Cristian's algorithm and the Berkeley
// algorithm, over simulated drifting clocks.
//
// Logical clocks (clocks.hpp) order events; these bound *physical* skew —
// the other half of the distributed-systems time lecture. The simulation
// gives each node a skewed/drifting clock and a symmetric message delay,
// so the classic accuracy result (error bounded by half the round-trip
// asymmetry) is directly observable.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/comm.hpp"
#include "support/rng.hpp"

namespace pdc::dist {

/// A node's physical clock: true time plus a fixed offset (skew) and a
/// multiplicative drift rate.
class DriftingClock {
 public:
  DriftingClock(double offset_seconds, double drift_rate)
      : offset_(offset_seconds), drift_(drift_rate) {}

  /// Local reading when the true time is `true_time`.
  [[nodiscard]] double read(double true_time) const {
    return true_time * (1.0 + drift_) + offset_;
  }

  /// Applies a correction (what a sync protocol adjusts).
  void adjust(double delta) { offset_ += delta; }

  [[nodiscard]] double offset() const { return offset_; }

 private:
  double offset_;
  double drift_;
};

struct SyncResult {
  double max_error_before = 0.0;  // max |node - reference| pre-sync
  double max_error_after = 0.0;
  std::uint64_t messages = 0;
};

/// Cristian's algorithm: each client asks a time server and sets its clock
/// to server_time + RTT/2. `delay(rng)` models one-way network delay; the
/// residual error is bounded by the delay asymmetry.
/// clocks[0] is the reference server.
SyncResult cristian_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng);

/// Berkeley algorithm: the master polls everyone (RTT-compensated),
/// averages the readings (its own included), and sends each node the delta
/// to the average — no node needs an authoritative source.
/// clocks[0] acts as master; errors are measured against the average.
SyncResult berkeley_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng);

/// Result of the message-passing Cristian exchange on one rank.
struct MpSyncResult {
  std::uint64_t messages = 0;   // protocol messages this rank sent
  double applied_delta = 0.0;   // correction applied (0 on the server)
};

/// Cristian's algorithm as a real message exchange over the
/// message-passing runtime: rank 0 is the time server (its clock is
/// authoritative and never adjusted); every other rank sends one
/// timestamp request and adjusts its DriftingClock by the classic
/// stamp + RTT/2 estimate. Wire delays stay simulated — each client draws
/// its one-way delays from `rng` and ships the request delay inside the
/// request so the server can stamp its clock at the simulated arrival
/// time, while the response delay remains unknown to the server (the
/// asymmetry that bounds Cristian's accuracy). Every rank must call this;
/// the exchanges carry WireTrace spans, so a trace session shows one flow
/// arrow per direction per client.
MpSyncResult cristian_sync_mp(mp::Communicator& comm, DriftingClock& clock,
                              double true_time, double mean_delay,
                              support::Rng& rng);

}  // namespace pdc::dist
