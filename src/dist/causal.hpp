// Causal broadcast: delivery respecting happened-before.
//
// The classic vector-clock application beyond mere comparison: a message
// broadcast with stamp VC is deliverable at process i only when it is the
// NEXT message from its sender (stamp[sender] == seen[sender]+1) and its
// causal past is already delivered (stamp[k] <= seen[k] for k != sender).
// CausalOrderBuffer implements the rule standalone (deterministically
// testable); CausalBroadcast wires it to the message-passing runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "mp/comm.hpp"

namespace pdc::dist {

/// A broadcast message as observed by a receiver.
struct CausalMessage {
  int source = 0;
  std::vector<std::uint64_t> stamp;
  std::int64_t payload = 0;
};

/// Buffers out-of-causal-order messages and releases them exactly when the
/// causal-delivery condition is met.
class CausalOrderBuffer {
 public:
  CausalOrderBuffer(std::size_t processes, std::size_t self);

  /// Called when the local process broadcasts (its own events count).
  /// Returns the stamp to attach.
  std::vector<std::uint64_t> stamp_send();

  /// Offers a received message; returns every message that became
  /// deliverable (in causal order), possibly including earlier-buffered
  /// ones unblocked by this arrival.
  std::vector<CausalMessage> offer(CausalMessage message);

  /// Messages still waiting on their causal past.
  [[nodiscard]] std::size_t buffered() const { return pending_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& delivered_vector() const {
    return seen_;
  }

 private:
  [[nodiscard]] bool deliverable(const CausalMessage& message) const;
  void mark_delivered(const CausalMessage& message);

  std::size_t self_;
  // seen_[k]: number of k's broadcasts delivered here (plus own sends).
  std::vector<std::uint64_t> seen_;
  std::vector<CausalMessage> pending_;
};

/// SPMD causal broadcast over a communicator. Non-blocking receive side:
/// call poll() regularly; deliveries come back in causal order.
class CausalBroadcast {
 public:
  explicit CausalBroadcast(mp::Communicator& comm);

  /// Broadcasts `payload` to every other rank, causally stamped.
  void broadcast(std::int64_t payload);

  /// Drains arrived messages; returns those now deliverable.
  std::vector<CausalMessage> poll();

  [[nodiscard]] std::size_t buffered() const { return buffer_.buffered(); }

 private:
  static constexpr int kTagCausal = 60;

  mp::Communicator& comm_;
  CausalOrderBuffer buffer_;
};

}  // namespace pdc::dist
