#include "dist/raft.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pdc::dist {

const char* to_string(RaftRole role) {
  switch (role) {
    case RaftRole::kFollower: return "follower";
    case RaftRole::kCandidate: return "candidate";
    case RaftRole::kLeader: return "leader";
  }
  return "?";
}

RaftNode::RaftNode(mp::Communicator& comm, StateMachine& machine,
                   RaftPersistentState& storage, RaftOptions options)
    : comm_(comm), machine_(machine), storage_(storage), options_(options),
      rng_(options.seed ^ (0x9e3779b97f4a7c15ull *
                           static_cast<std::uint64_t>(comm.rank() + 1))) {
  PDC_CHECK(options_.election_timeout_min_ms > 0.0 &&
            options_.election_timeout_max_ms >= options_.election_timeout_min_ms);
  PDC_CHECK(options_.heartbeat_ms > 0.0 && options_.max_entries_per_append > 0);
  if (storage_.snapshot_index > 0) {
    // Crash recovery: rebuild the state machine from the compaction
    // snapshot; entries after it are re-applied once a leader re-derives
    // the commit index (commit index is volatile state in Raft).
    machine_.restore(storage_.snapshot);
    commit_index_ = storage_.snapshot_index;
    last_applied_ = storage_.snapshot_index;
  }
  reset_election_timer();
  if constexpr (obs::kObsEnabled) {
    const std::string r = std::to_string(comm.rank());
    auto& registry = obs::MetricsRegistry::instance();
    term_gauge_ = &registry.gauge("pdc.raft.term", {{"rank", r}});
    commit_gauge_ = &registry.gauge("pdc.raft.commit_index", {{"rank", r}});
    append_hist_ = &registry.histogram("pdc.raft.append_us", {{"rank", r}});
    // A rejoining node re-creates these series; roll the exported value
    // back to what the registry already holds so deltas stay consistent.
    exported_term_ = term_gauge_->value();
    exported_commit_ = commit_gauge_->value();
  }
}

void RaftNode::export_gauges() {
  if (term_gauge_ != nullptr) {
    const auto term = static_cast<std::int64_t>(storage_.current_term);
    if (term != exported_term_) {
      term_gauge_->add(term - exported_term_);
      exported_term_ = term;
    }
  }
  if (commit_gauge_ != nullptr) {
    const auto commit = static_cast<std::int64_t>(commit_index_);
    if (commit != exported_commit_) {
      commit_gauge_->add(commit - exported_commit_);
      exported_commit_ = commit;
    }
  }
}

std::uint64_t RaftNode::term_at(std::uint64_t index) const {
  if (index == 0) return 0;
  if (index == storage_.snapshot_index) return storage_.snapshot_term;
  PDC_CHECK_MSG(index > storage_.snapshot_index && index <= last_index(),
                "term_at: index compacted away or beyond the log");
  return storage_.log[static_cast<std::size_t>(index - storage_.snapshot_index - 1)].term;
}

const RaftLogEntry* RaftNode::entry(std::uint64_t index) const {
  if (index <= storage_.snapshot_index || index > last_index()) return nullptr;
  return &storage_.log[static_cast<std::size_t>(index - storage_.snapshot_index - 1)];
}

void RaftNode::reset_election_timer() {
  election_timer_.reset();
  election_timeout_ms_ = rng_.uniform(options_.election_timeout_min_ms,
                                      options_.election_timeout_max_ms);
}

void RaftNode::send(int dest, int tag, std::vector<std::uint8_t> payload) {
  comm_.send_vector(payload, dest, tag);
  ++messages_sent_;
}

void RaftNode::tick() {
  drain_messages();
  if (role_ == RaftRole::kLeader) {
    if (heartbeat_timer_.elapsed_millis() >= options_.heartbeat_ms) {
      broadcast_heartbeats();
    }
  } else if (election_timer_.elapsed_millis() >= election_timeout_ms_) {
    start_election();
  }
  export_gauges();
}

void RaftNode::drain_messages() {
  struct TagHandler {
    int tag;
    void (RaftNode::*handler)(int, const std::vector<std::uint8_t>&);
  };
  static constexpr TagHandler kHandlers[] = {
      {kTagRequestVote, &RaftNode::handle_request_vote},
      {kTagVoteReply, &RaftNode::handle_vote_reply},
      {kTagAppend, &RaftNode::handle_append},
      {kTagAppendReply, &RaftNode::handle_append_reply},
      {kTagInstallSnapshot, &RaftNode::handle_install_snapshot},
      {kTagSnapshotReply, &RaftNode::handle_snapshot_reply},
  };
  for (const auto& [tag, handler] : kHandlers) {
    while (auto info = comm_.iprobe(mp::kAnySource, tag)) {
      const auto raw = comm_.recv_vector<std::uint8_t>(info->source, tag);
      (this->*handler)(info->source, raw);
    }
  }
}

void RaftNode::step_down(std::uint64_t term) {
  if (term > storage_.current_term) {
    storage_.current_term = term;
    storage_.voted_for = -1;  // a new term means a fresh vote
  }
  if (role_ != RaftRole::kFollower) {
    PDC_OBS_COUNT("pdc.raft.step_down");
    obs::trace_instant("raft.step_down", storage_.current_term);
  }
  role_ = RaftRole::kFollower;
  vote_granted_.clear();
  round_ = 0;
  confirmed_round_ = 0;
  term_start_index_ = 0;
  submit_ms_.clear();
  // Entries this node was replicating may still commit under the next
  // leader, but *this* replication attempt is over — close the spans as
  // errors so the traces survive tail sampling.
  for (TracedEntry& traced : traced_) {
    obs::span_end(traced.replicate, /*error=*/true);
  }
  traced_.clear();
  reset_election_timer();
}

void RaftNode::start_election() {
  ++storage_.current_term;
  storage_.voted_for = comm_.rank();
  role_ = RaftRole::kCandidate;
  vote_granted_.assign(static_cast<std::size_t>(comm_.size()), false);
  vote_granted_[static_cast<std::size_t>(comm_.rank())] = true;
  leader_hint_ = -1;
  reset_election_timer();
  PDC_OBS_COUNT("pdc.raft.elections");
  obs::trace_instant("raft.election", storage_.current_term);
  if (granted_votes() >= quorum()) {  // single-node cluster
    become_leader();
    return;
  }
  wire::Writer w;
  w.u64(storage_.current_term);
  w.u64(last_index());
  w.u64(term_at(last_index()));
  const auto payload = w.take();
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer != comm_.rank()) send(peer, kTagRequestVote, payload);
  }
}

void RaftNode::become_leader() {
  role_ = RaftRole::kLeader;
  leader_hint_ = comm_.rank();
  const auto p = static_cast<std::size_t>(comm_.size());
  next_index_.assign(p, last_index() + 1);
  match_index_.assign(p, 0);
  acked_round_.assign(p, 0);
  round_ = 0;
  confirmed_round_ = 0;
  PDC_OBS_COUNT("pdc.raft.leader_elected");
  obs::trace_instant("raft.elected", storage_.current_term);
  // Term-start no-op barrier entry (§8): commits — and therefore makes
  // visible to read-index reads — every entry from previous terms without
  // waiting for client traffic.
  storage_.log.push_back(RaftLogEntry{storage_.current_term, {}});
  term_start_index_ = last_index();
  match_index_[static_cast<std::size_t>(comm_.rank())] = last_index();
  submit_ms_.emplace_back(last_index(), age_.elapsed_millis());
  if (options_.unsafe_early_commit) {
    commit_index_ = last_index();
  }
  advance_commit();
  apply_committed();
  broadcast_heartbeats();
}

std::optional<std::uint64_t> RaftNode::submit(std::vector<std::uint8_t> command,
                                              obs::SpanContext trace) {
  if (role_ != RaftRole::kLeader) return std::nullopt;
  storage_.log.push_back(RaftLogEntry{storage_.current_term, std::move(command)});
  const std::uint64_t index = last_index();
  match_index_[static_cast<std::size_t>(comm_.rank())] = index;
  submit_ms_.emplace_back(index, age_.elapsed_millis());
  if (trace.valid() && obs::span_enabled()) {
    TracedEntry traced;
    traced.index = index;
    traced.ctx = trace;
    traced.replicate = obs::span_begin("raft.replicate", trace);
    traced_.push_back(std::move(traced));
  }
  PDC_OBS_COUNT("pdc.raft.submitted");
  if (options_.unsafe_early_commit) {
    // The teaching bug: "commit" without a quorum. The entry is applied
    // and acknowledged now, yet a leader change can still truncate it.
    commit_index_ = index;
  }
  advance_commit();
  apply_committed();
  broadcast_heartbeats();
  return index;
}

std::uint64_t RaftNode::begin_read_round() {
  PDC_CHECK_MSG(role_ == RaftRole::kLeader,
                "read rounds are initiated by the leader");
  broadcast_heartbeats();
  return round_;
}

void RaftNode::broadcast_heartbeats() {
  ++round_;
  heartbeat_timer_.reset();
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer != comm_.rank()) replicate(peer);
  }
  update_confirmed_round();  // single-node clusters confirm instantly
}

void RaftNode::replicate(int peer) {
  const auto p = static_cast<std::size_t>(peer);
  if (next_index_[p] <= storage_.snapshot_index) {
    // The follower's next entry was compacted away: ship the snapshot.
    wire::Writer w;
    w.u64(storage_.current_term);
    w.u64(storage_.snapshot_index);
    w.u64(storage_.snapshot_term);
    w.u64(round_);
    w.bytes(storage_.snapshot);
    send(peer, kTagInstallSnapshot, w.take());
    PDC_OBS_COUNT("pdc.raft.snapshot_sent");
    return;
  }
  const std::uint64_t prev = next_index_[p] - 1;
  const std::uint64_t first = next_index_[p];
  const std::uint64_t last =
      std::min(last_index(), first + options_.max_entries_per_append - 1);
  wire::Writer w;
  w.u64(storage_.current_term);
  w.u64(prev);
  w.u64(term_at(prev));
  w.u64(commit_index_);
  w.u64(round_);
  const std::uint64_t n = last >= first ? last - first + 1 : 0;
  w.u64(n);
  for (std::uint64_t i = first; i < first + n; ++i) {
    const RaftLogEntry* e = entry(i);
    w.u64(e->term);
    w.bytes(e->command);
  }
  // Ship the first traced entry's replicate-span context as the ambient
  // scope: the envelope's piggyback carries it, so the follower's
  // raft.append span nests under raft.replicate in the request's trace.
  obs::SpanContext append_ctx{};
  if (obs::span_enabled()) {
    for (const TracedEntry& traced : traced_) {
      if (traced.index >= first && traced.index <= last) {
        append_ctx = traced.replicate.context();
        break;
      }
    }
  }
  obs::SpanScope scope(append_ctx.valid() ? append_ctx : obs::current_span());
  send(peer, kTagAppend, w.take());
  PDC_OBS_COUNT("pdc.raft.append_sent");
}

void RaftNode::handle_request_vote(int src, const std::vector<std::uint8_t>& raw) {
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const std::uint64_t cand_last_index = r.u64();
  const std::uint64_t cand_last_term = r.u64();
  if (term > storage_.current_term) step_down(term);
  bool granted = false;
  if (term == storage_.current_term) {
    const std::uint64_t my_last_term = term_at(last_index());
    const bool up_to_date =
        cand_last_term > my_last_term ||
        (cand_last_term == my_last_term && cand_last_index >= last_index());
    if ((storage_.voted_for == -1 || storage_.voted_for == src) && up_to_date) {
      granted = true;
      storage_.voted_for = src;
      reset_election_timer();
    }
  }
  wire::Writer w;
  w.u64(storage_.current_term);
  w.u8(granted ? 1 : 0);
  send(src, kTagVoteReply, w.take());
}

void RaftNode::handle_vote_reply(int src, const std::vector<std::uint8_t>& raw) {
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const bool granted = r.u8() != 0;
  if (term > storage_.current_term) {
    step_down(term);
    return;
  }
  if (role_ != RaftRole::kCandidate || term != storage_.current_term || !granted) {
    return;
  }
  // Per-rank, not a counter: the fabric may deliver a duplicated copy of
  // this reply, and a double-counted voter would elect a leader without a
  // true majority (split brain).
  if (vote_granted_[static_cast<std::size_t>(src)]) return;
  vote_granted_[static_cast<std::size_t>(src)] = true;
  if (granted_votes() >= quorum()) become_leader();
}

void RaftNode::handle_append(int src, const std::vector<std::uint8_t>& raw) {
  // Traced AppendEntries (stamped by the leader's replicate scope) get a
  // follower-side span; untraced ones make this a no-op guard.
  obs::SpanGuard append_span("raft.append", obs::take_incoming_span());
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const std::uint64_t prev_index = r.u64();
  const std::uint64_t prev_term = r.u64();
  const std::uint64_t leader_commit = r.u64();
  const std::uint64_t round = r.u64();
  const std::uint64_t n = r.u64();

  auto reply = [&](bool success, std::uint64_t match_or_hint) {
    wire::Writer w;
    w.u64(storage_.current_term);
    w.u8(success ? 1 : 0);
    w.u64(match_or_hint);
    w.u64(round);
    send(src, kTagAppendReply, w.take());
  };

  if (term < storage_.current_term) {
    // Stale leader: our reply carries the higher term, deposing it.
    PDC_OBS_COUNT("pdc.raft.stale_append_rejected");
    reply(false, 0);
    return;
  }
  if (term == storage_.current_term && role_ == RaftRole::kLeader) {
    // Two leaders in one term would need two disjoint quorums; a message
    // claiming so is a protocol-violation artifact. Drop it loudly.
    PDC_OBS_COUNT("pdc.raft.anomaly");
    return;
  }
  step_down(term);
  leader_hint_ = src;
  reset_election_timer();

  if (prev_index > last_index()) {
    // Log gap: tell the leader where our log actually ends.
    reply(false, last_index() + 1);
    return;
  }
  if (prev_index >= storage_.snapshot_index && term_at(prev_index) != prev_term) {
    // Conflict at prev: leader backs up (consistency check, §5.3).
    PDC_OBS_COUNT("pdc.raft.append_conflict");
    reply(false, prev_index);
    return;
  }

  std::uint64_t index = prev_index;
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint64_t entry_term = r.u64();
    auto command = r.bytes();
    ++index;
    if (index <= storage_.snapshot_index) continue;  // covered by snapshot
    if (index <= last_index()) {
      if (term_at(index) == entry_term) continue;  // already have it
      // Conflict: truncate our tail — it belongs to a deposed leader.
      storage_.log.resize(static_cast<std::size_t>(index - storage_.snapshot_index - 1));
      PDC_OBS_COUNT("pdc.raft.entries_truncated");
    }
    storage_.log.push_back(RaftLogEntry{entry_term, std::move(command)});
  }
  const std::uint64_t match = prev_index + n;
  // Everything up to `match` now provably equals the leader's log, so the
  // leader's commit index is safe to adopt up to there.
  if (leader_commit > commit_index_) {
    commit_index_ = std::max(commit_index_, std::min(leader_commit, match));
    apply_committed();
  }
  reply(true, match);
}

void RaftNode::handle_append_reply(int src, const std::vector<std::uint8_t>& raw) {
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const bool success = r.u8() != 0;
  const std::uint64_t match_or_hint = r.u64();
  const std::uint64_t round = r.u64();
  if (term > storage_.current_term) {
    step_down(term);
    return;
  }
  if (role_ != RaftRole::kLeader || term != storage_.current_term) return;
  const auto p = static_cast<std::size_t>(src);
  if (success) {
    match_index_[p] = std::max(match_index_[p], match_or_hint);
    next_index_[p] = std::max(next_index_[p], match_or_hint + 1);
    acked_round_[p] = std::max(acked_round_[p], round);
    advance_commit();
    apply_committed();
    update_confirmed_round();
    if (next_index_[p] <= last_index()) replicate(src);
  } else {
    // Back up; a hint of 0 means "you are stale", which step_down above
    // already handled via the term check — here it is just a floor.
    next_index_[p] = std::max<std::uint64_t>(
        1, std::min(next_index_[p], std::max<std::uint64_t>(match_or_hint, 1)));
    // A same-term rejection still proves the follower recognizes this
    // leader, so it counts toward read-round confirmation — otherwise
    // reads stall behind log repair.
    acked_round_[p] = std::max(acked_round_[p], round);
    update_confirmed_round();
    PDC_OBS_COUNT("pdc.raft.append_rejected");
    replicate(src);
  }
}

void RaftNode::handle_install_snapshot(int src, const std::vector<std::uint8_t>& raw) {
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const std::uint64_t snap_index = r.u64();
  const std::uint64_t snap_term = r.u64();
  const std::uint64_t round = r.u64();
  auto image = r.bytes();
  if (term < storage_.current_term) {
    wire::Writer w;
    w.u64(storage_.current_term);
    w.u64(0);
    w.u64(round);
    send(src, kTagSnapshotReply, w.take());
    return;
  }
  step_down(term);
  leader_hint_ = src;
  reset_election_timer();

  if (snap_index > last_applied_) {
    // Retain a suffix only when our entry at snap_index matches the
    // snapshot's last included term; otherwise the whole log is suspect.
    const bool keep_suffix = snap_index >= storage_.snapshot_index &&
                             snap_index <= last_index() &&
                             term_at(snap_index) == snap_term;
    if (keep_suffix) {
      storage_.log.erase(
          storage_.log.begin(),
          storage_.log.begin() +
              static_cast<std::ptrdiff_t>(snap_index - storage_.snapshot_index));
    } else {
      storage_.log.clear();
    }
    machine_.restore(image);
    storage_.snapshot = std::move(image);
    storage_.snapshot_index = snap_index;
    storage_.snapshot_term = snap_term;
    last_applied_ = snap_index;
    commit_index_ = std::max(commit_index_, snap_index);
    ++snapshots_installed_;
    PDC_OBS_COUNT("pdc.raft.snapshot_installed");
    obs::trace_instant("raft.snapshot_installed", snap_index);
    apply_committed();
  }
  wire::Writer w;
  w.u64(storage_.current_term);
  w.u64(snap_index);
  w.u64(round);
  send(src, kTagSnapshotReply, w.take());
}

void RaftNode::handle_snapshot_reply(int src, const std::vector<std::uint8_t>& raw) {
  wire::Reader r(raw);
  const std::uint64_t term = r.u64();
  const std::uint64_t snap_index = r.u64();
  const std::uint64_t round = r.u64();
  if (term > storage_.current_term) {
    step_down(term);
    return;
  }
  if (role_ != RaftRole::kLeader || term != storage_.current_term) return;
  const auto p = static_cast<std::size_t>(src);
  match_index_[p] = std::max(match_index_[p], snap_index);
  next_index_[p] = std::max(next_index_[p], snap_index + 1);
  // Like append replies, a snapshot ack proves leadership recognition.
  acked_round_[p] = std::max(acked_round_[p], round);
  update_confirmed_round();
  if (next_index_[p] <= last_index()) replicate(src);
}

void RaftNode::advance_commit() {
  if (role_ != RaftRole::kLeader) return;
  for (std::uint64_t n = last_index(); n > commit_index_; --n) {
    if (term_at(n) != storage_.current_term) break;  // Figure 8: only own term
    int count = 0;
    for (const std::uint64_t match : match_index_) {
      if (match >= n) ++count;
    }
    if (count >= quorum()) {
      commit_index_ = n;
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    const std::uint64_t index = ++last_applied_;
    const RaftLogEntry* e = entry(index);
    PDC_CHECK_MSG(e != nullptr, "committed entry compacted before apply");
    const std::uint64_t entry_term = e->term;
    // Commit point for a traced entry: its raft.replicate span ends here,
    // and the apply below runs under a sibling raft.apply span (both
    // children of the submitted context, so critical-path attribution
    // separates replication wait from apply work).
    obs::SpanContext trace_ctx{};
    for (auto it = traced_.begin(); it != traced_.end(); ++it) {
      if (it->index == index) {
        trace_ctx = it->ctx;
        obs::span_end(it->replicate);
        traced_.erase(it);
        break;
      }
    }
    std::vector<std::uint8_t> reply;
    if (!e->command.empty()) {
      obs::ActiveSpan apply_span = obs::span_begin("raft.apply", trace_ctx);
      reply = machine_.apply(index, e->command);
      obs::span_end(apply_span);
      PDC_OBS_COUNT("pdc.raft.applied");
    }
    // The entry pointer may dangle after apply/compaction below — copy
    // what the listener needs first.
    const std::vector<std::uint8_t> command = e->command;
    if (!submit_ms_.empty() && append_hist_ != nullptr) {
      for (auto it = submit_ms_.begin(); it != submit_ms_.end(); ++it) {
        if (it->first == index) {
          append_hist_->record((age_.elapsed_millis() - it->second) * 1e3);
          submit_ms_.erase(it);
          break;
        }
      }
    }
    if (listener_) listener_(index, entry_term, command, reply);
    maybe_compact();
  }
  export_gauges();
}

void RaftNode::maybe_compact() {
  if (options_.snapshot_threshold == 0) return;
  if (storage_.log.size() <= options_.snapshot_threshold) return;
  if (last_applied_ <= storage_.snapshot_index) return;
  const std::uint64_t cut = last_applied_;
  const std::uint64_t cut_term = term_at(cut);
  storage_.snapshot = machine_.snapshot_image();
  storage_.log.erase(
      storage_.log.begin(),
      storage_.log.begin() +
          static_cast<std::ptrdiff_t>(cut - storage_.snapshot_index));
  storage_.snapshot_index = cut;
  storage_.snapshot_term = cut_term;
  PDC_OBS_COUNT("pdc.raft.compactions");
  obs::trace_instant("raft.compacted", cut);
}

void RaftNode::update_confirmed_round() {
  if (role_ != RaftRole::kLeader) return;
  std::vector<std::uint64_t> rounds = acked_round_;
  rounds[static_cast<std::size_t>(comm_.rank())] = round_;
  std::sort(rounds.begin(), rounds.end(), std::greater<>());
  confirmed_round_ =
      std::max(confirmed_round_, rounds[static_cast<std::size_t>(quorum() - 1)]);
}

}  // namespace pdc::dist
