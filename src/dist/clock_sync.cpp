#include "dist/clock_sync.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "support/check.hpp"

namespace pdc::dist {

namespace {
/// One-way delay: exponential around the mean (always positive).
double draw_delay(double mean_delay, support::Rng& rng) {
  return rng.exponential(1.0 / mean_delay);
}

double max_abs_error_vs(const std::vector<DriftingClock>& clocks,
                        double true_time, double reference) {
  double worst = 0.0;
  for (const auto& clock : clocks) {
    worst = std::max(worst, std::abs(clock.read(true_time) - reference));
  }
  return worst;
}
}  // namespace

SyncResult cristian_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng) {
  PDC_CHECK(clocks.size() >= 2);
  SyncResult result;
  const double server_now = clocks[0].read(true_time);
  result.max_error_before = max_abs_error_vs(clocks, true_time, server_now);

  for (std::size_t client = 1; client < clocks.size(); ++client) {
    // Request travels to the server, response travels back.
    const double d_request = draw_delay(mean_delay, rng);
    const double d_response = draw_delay(mean_delay, rng);
    result.messages += 2;
    // Server stamps its clock when the request arrives (true_time+d_req);
    // the client receives it at true_time + d_req + d_resp and estimates
    // "server time now" as stamp + RTT/2.
    const double stamp = clocks[0].read(true_time + d_request);
    const double rtt = d_request + d_response;
    const double estimate = stamp + rtt / 2.0;
    const double local = clocks[client].read(true_time + rtt);
    clocks[client].adjust(estimate - local);
  }

  const double server_after = clocks[0].read(true_time);
  result.max_error_after = max_abs_error_vs(clocks, true_time, server_after);
  return result;
}

namespace {
constexpr int kTagTimeRequest = 60;
constexpr int kTagTimeResponse = 61;

/// The request carries the sender-drawn one-way delay so the server can
/// stamp its clock at the simulated arrival time (the fabric itself is
/// eager; the delay model lives in the payload).
struct TimeRequest {
  double request_delay;
};
}  // namespace

MpSyncResult cristian_sync_mp(mp::Communicator& comm, DriftingClock& clock,
                              double true_time, double mean_delay,
                              support::Rng& rng) {
  const int me = comm.rank();
  const int p = comm.size();
  MpSyncResult result;
  obs::set_trace_thread_name("clocksync.rank", static_cast<std::uint64_t>(me));

  if (me == 0) {
    obs::ScopedSpan span("clocksync.serve");
    for (int served = 0; served + 1 < p; ++served) {
      const mp::RecvInfo info = comm.probe(mp::kAnySource, kTagTimeRequest);
      const auto request =
          comm.recv_value<TimeRequest>(info.source, kTagTimeRequest);
      const double stamp = clock.read(true_time + request.request_delay);
      comm.send_value(stamp, info.source, kTagTimeResponse);
      ++result.messages;
      PDC_OBS_COUNT("pdc.clocksync.served");
    }
    return result;
  }

  obs::ScopedSpan span("clocksync.exchange", static_cast<std::uint64_t>(me));
  const double d_request = draw_delay(mean_delay, rng);
  const double d_response = draw_delay(mean_delay, rng);
  comm.send_value(TimeRequest{d_request}, 0, kTagTimeRequest);
  ++result.messages;
  const double stamp = comm.recv_value<double>(0, kTagTimeResponse);
  const double rtt = d_request + d_response;
  const double estimate = stamp + rtt / 2.0;
  const double local = clock.read(true_time + rtt);
  result.applied_delta = estimate - local;
  clock.adjust(result.applied_delta);
  obs::trace_instant("clocksync.adjust");
  PDC_OBS_COUNT("pdc.clocksync.syncs");
  return result;
}

SyncResult berkeley_sync(std::vector<DriftingClock>& clocks, double true_time,
                         double mean_delay, support::Rng& rng) {
  PDC_CHECK(clocks.size() >= 2);
  SyncResult result;

  // Pre-sync error vs the ensemble average (Berkeley's own reference).
  double sum_before = 0.0;
  for (const auto& clock : clocks) sum_before += clock.read(true_time);
  const double avg_before = sum_before / static_cast<double>(clocks.size());
  result.max_error_before = max_abs_error_vs(clocks, true_time, avg_before);

  // Master polls every slave; RTT/2 compensation on each reading.
  std::vector<double> estimated_offsets(clocks.size(), 0.0);  // vs master
  const double master_now = clocks[0].read(true_time);
  for (std::size_t slave = 1; slave < clocks.size(); ++slave) {
    const double d_request = draw_delay(mean_delay, rng);
    const double d_response = draw_delay(mean_delay, rng);
    result.messages += 2;
    const double reading = clocks[slave].read(true_time + d_request);
    const double compensated = reading + d_response;  // RTT/2-ish correction
    estimated_offsets[slave] = compensated - master_now;
  }

  double average_offset = 0.0;
  for (double offset : estimated_offsets) average_offset += offset;
  average_offset /= static_cast<double>(clocks.size());

  // Send each node its delta to the average (master included).
  for (std::size_t node = 0; node < clocks.size(); ++node) {
    const double delta = average_offset - estimated_offsets[node];
    clocks[node].adjust(delta);
    if (node != 0) ++result.messages;
  }

  double sum_after = 0.0;
  for (const auto& clock : clocks) sum_after += clock.read(true_time);
  const double avg_after = sum_after / static_cast<double>(clocks.size());
  result.max_error_after = max_abs_error_vs(clocks, true_time, avg_after);
  return result;
}

}  // namespace pdc::dist
