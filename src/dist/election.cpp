#include "dist/election.hpp"

#include <thread>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"
#include "testkit/hooks.hpp"

namespace pdc::dist {

namespace {
constexpr int kTagElect = 20;
constexpr int kTagCoord = 21;
constexpr int kTagElection = 30;
constexpr int kTagOk = 31;
constexpr int kTagCoordinator = 32;

int next_alive(const std::vector<bool>& alive, int from) {
  const int p = static_cast<int>(alive.size());
  for (int step = 1; step <= p; ++step) {
    const int candidate = (from + step) % p;
    if (alive[static_cast<std::size_t>(candidate)]) return candidate;
  }
  PDC_CHECK_MSG(false, "no alive rank in the ring");
  return -1;
}
}  // namespace

ElectionResult ring_election(mp::Communicator& comm,
                             const std::vector<bool>& alive, bool initiate) {
  PDC_CHECK(static_cast<int>(alive.size()) == comm.size());
  ElectionResult result;
  const int me = comm.rank();
  if (!alive[static_cast<std::size_t>(me)]) return result;  // dead: not playing
  obs::set_trace_thread_name("election.rank", static_cast<std::uint64_t>(me));
  obs::ScopedSpan span("election.ring", static_cast<std::uint64_t>(me));

  const int successor = next_alive(alive, me);
  bool participated = false;

  if (initiate) {
    comm.send_value(me, successor, kTagElect);
    ++result.messages_sent;
    PDC_OBS_COUNT("pdc.election.messages");
    participated = true;
  }

  for (;;) {
    testkit::yield_point("ring_election.pump");
    const mp::RecvInfo info = comm.probe(mp::kAnySource, mp::kAnyTag);
    if (info.tag == kTagElect) {
      const int candidate = comm.recv_value<int>(info.source, kTagElect);
      if (candidate == me) {
        // My own id came all the way around: I have the highest id.
        result.leader = me;
        comm.send_value(me, successor, kTagCoord);
        ++result.messages_sent;
        PDC_OBS_COUNT("pdc.election.messages");
        obs::trace_instant("election.elected", static_cast<std::uint64_t>(me));
        PDC_OBS_COUNT("pdc.election.won");
        return result;
      }
      if (candidate > me) {
        comm.send_value(candidate, successor, kTagElect);
        ++result.messages_sent;
        PDC_OBS_COUNT("pdc.election.messages");
        participated = true;
      } else if (!participated) {
        // Replace the weaker candidacy with my own.
        comm.send_value(me, successor, kTagElect);
        ++result.messages_sent;
        PDC_OBS_COUNT("pdc.election.messages");
        participated = true;
      }
      // candidate < me && participated: swallow (my candidacy is ahead).
    } else if (info.tag == kTagCoord) {
      const int leader = comm.recv_value<int>(info.source, kTagCoord);
      result.leader = leader;
      if (leader != me) {
        comm.send_value(leader, successor, kTagCoord);
        ++result.messages_sent;
        PDC_OBS_COUNT("pdc.election.messages");
      }
      obs::trace_instant("election.elected",
                         static_cast<std::uint64_t>(leader));
      return result;
    } else {
      PDC_CHECK_MSG(false, "unexpected tag in ring_election");
    }
  }
}

ElectionResult bully_election(mp::Communicator& comm,
                              const std::vector<bool>& alive, int initiator,
                              std::chrono::milliseconds timeout) {
  PDC_CHECK(static_cast<int>(alive.size()) == comm.size());
  ElectionResult result;
  const int me = comm.rank();
  const int p = comm.size();
  if (!alive[static_cast<std::size_t>(me)]) return result;
  obs::set_trace_thread_name("election.rank", static_cast<std::uint64_t>(me));
  obs::ScopedSpan span("election.bully", static_cast<std::uint64_t>(me));

  bool electing = me == initiator;
  int retries = 0;

  auto broadcast_victory = [&] {
    for (int peer = 0; peer < p; ++peer) {
      if (peer == me) continue;
      comm.send_value(me, peer, kTagCoordinator);
      ++result.messages_sent;
      PDC_OBS_COUNT("pdc.election.messages");
    }
    result.leader = me;
    obs::trace_instant("election.elected", static_cast<std::uint64_t>(me));
    PDC_OBS_COUNT("pdc.election.won");
  };

  auto challenge_higher = [&] {
    int sent = 0;
    for (int peer = me + 1; peer < p; ++peer) {
      comm.send_value(me, peer, kTagElection);
      ++result.messages_sent;
      PDC_OBS_COUNT("pdc.election.messages");
      ++sent;
    }
    return sent;
  };

  // Pump handling shared by all wait states. Returns true when a
  // coordinator announcement ended the election.
  auto drain_one = [&](const mp::RecvInfo& info, bool* saw_ok) {
    if (info.tag == kTagElection) {
      const int challenger = comm.recv_value<int>(info.source, kTagElection);
      comm.send_value(me, challenger, kTagOk);
      ++result.messages_sent;
      PDC_OBS_COUNT("pdc.election.messages");
      electing = true;  // a lower rank is electing: I must bully upward too
      return false;
    }
    if (info.tag == kTagOk) {
      (void)comm.recv_value<int>(info.source, kTagOk);
      if (saw_ok) *saw_ok = true;
      return false;
    }
    if (info.tag == kTagCoordinator) {
      result.leader = comm.recv_value<int>(info.source, kTagCoordinator);
      obs::trace_instant("election.elected",
                         static_cast<std::uint64_t>(result.leader));
      return true;
    }
    PDC_CHECK_MSG(false, "unexpected tag in bully_election");
    return false;
  };

  for (;;) {
    testkit::yield_point("bully.pump");
    if (electing) {
      electing = false;
      if (challenge_higher() == 0) {
        broadcast_victory();
        return result;
      }
      // Wait for any OK (a live superior) within the timeout.
      bool saw_ok = false;
      support::Stopwatch clock;
      while (clock.elapsed_millis() < static_cast<double>(timeout.count())) {
        if (auto info = comm.iprobe(mp::kAnySource, mp::kAnyTag)) {
          if (drain_one(*info, &saw_ok)) return result;
          if (saw_ok) break;
        } else {
          std::this_thread::yield();
        }
      }
      if (!saw_ok) {
        broadcast_victory();
        return result;
      }
      // A superior took over: await its coordinator announcement, bounded.
      support::Stopwatch coord_clock;
      const double coord_budget =
          static_cast<double>(timeout.count()) * (p + 2);
      while (coord_clock.elapsed_millis() < coord_budget) {
        if (auto info = comm.iprobe(mp::kAnySource, mp::kAnyTag)) {
          if (drain_one(*info, nullptr)) return result;
        } else {
          std::this_thread::yield();
        }
      }
      PDC_CHECK_MSG(++retries < 5, "bully election failed to converge");
      electing = true;  // superior vanished: restart
      continue;
    }

    // Passive: serve challenges until a coordinator emerges (or a
    // challenge flips us into electing mode).
    if (auto info = comm.iprobe(mp::kAnySource, mp::kAnyTag)) {
      if (drain_one(*info, nullptr)) return result;
    } else {
      std::this_thread::yield();
    }
  }
}

}  // namespace pdc::dist
