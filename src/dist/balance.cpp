#include "dist/balance.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "support/check.hpp"

namespace pdc::dist {

double BalanceResult::utilization() const {
  if (makespan <= 0.0 || worker_busy.empty()) return 1.0;
  double total = 0.0;
  for (double b : worker_busy) total += b;
  return total / (static_cast<double>(worker_busy.size()) * makespan);
}

BalanceResult simulate_round_robin(const std::vector<double>& durations,
                                   std::size_t workers) {
  PDC_CHECK(workers >= 1);
  BalanceResult result;
  result.worker_busy.assign(workers, 0.0);
  for (std::size_t i = 0; i < durations.size(); ++i) {
    result.worker_busy[i % workers] += durations[i];
  }
  result.makespan =
      *std::max_element(result.worker_busy.begin(), result.worker_busy.end());
  return result;
}

BalanceResult simulate_least_loaded(const std::vector<double>& durations,
                                    std::size_t workers) {
  PDC_CHECK(workers >= 1);
  BalanceResult result;
  result.worker_busy.assign(workers, 0.0);
  for (double d : durations) {
    auto lightest =
        std::min_element(result.worker_busy.begin(), result.worker_busy.end());
    *lightest += d;
  }
  result.makespan =
      *std::max_element(result.worker_busy.begin(), result.worker_busy.end());
  return result;
}

BalanceResult simulate_work_stealing(const std::vector<double>& durations,
                                     std::size_t workers) {
  PDC_CHECK(workers >= 1);
  BalanceResult result;
  result.worker_busy.assign(workers, 0.0);

  std::vector<std::deque<double>> queues(workers);
  for (std::size_t i = 0; i < durations.size(); ++i) {
    queues[i % workers].push_back(durations[i]);
  }
  std::vector<double> clock(workers, 0.0);
  std::vector<bool> done(workers, false);
  std::size_t done_count = 0;

  // Time-ordered greedy: the worker whose clock is lowest acts next —
  // exactly the order events occur in real time.
  while (done_count < workers) {
    std::size_t w = SIZE_MAX;
    for (std::size_t c = 0; c < workers; ++c) {
      if (done[c]) continue;
      if (w == SIZE_MAX || clock[c] < clock[w]) w = c;
    }
    double task = -1.0;
    if (!queues[w].empty()) {
      task = queues[w].front();
      queues[w].pop_front();
    } else {
      // Steal from the victim with the most queued work (back of deque).
      std::size_t victim = SIZE_MAX;
      double victim_load = 0.0;
      for (std::size_t c = 0; c < workers; ++c) {
        double queued = 0.0;
        for (double d : queues[c]) queued += d;
        if (queued > victim_load) {
          victim_load = queued;
          victim = c;
        }
      }
      if (victim == SIZE_MAX) {
        done[w] = true;
        ++done_count;
        continue;
      }
      task = queues[victim].back();
      queues[victim].pop_back();
      ++result.steals;
      // A steal is only legal if the victim has not yet started that task:
      // the victim's clock must not already be past the thief's. In this
      // time-ordered loop the thief has the minimum clock, so it is.
    }
    clock[w] += task;
    result.worker_busy[w] += task;
  }
  result.makespan = *std::max_element(clock.begin(), clock.end());
  return result;
}

std::vector<double> make_skewed_tasks(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> tasks(n);
  for (auto& t : tasks) {
    // 5% heavy tail: the workload shape that defeats static assignment.
    t = rng.bernoulli(0.05) ? rng.uniform(30.0, 60.0) : rng.uniform(0.5, 2.0);
  }
  return tasks;
}

// --------------------------------------------------------------------------

namespace {
std::uint64_t hash_string(const std::string& s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char ch : s) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}
}  // namespace

ConsistentHashRing::ConsistentHashRing(std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  PDC_CHECK(virtual_nodes >= 1);
}

void ConsistentHashRing::add_node(const std::string& node) {
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    ring_[hash_string(node + "#" + std::to_string(v))] = node;
  }
  ++nodes_;
}

void ConsistentHashRing::remove_node(const std::string& node) {
  std::size_t erased = 0;
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    erased += ring_.erase(hash_string(node + "#" + std::to_string(v)));
  }
  PDC_CHECK_MSG(erased == virtual_nodes_, "node was not on the ring");
  --nodes_;
}

const std::string& ConsistentHashRing::node_for(const std::string& key) const {
  PDC_CHECK_MSG(!ring_.empty(), "lookup on an empty ring");
  auto it = ring_.lower_bound(hash_string(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

// --------------------------------------------------------------------------

namespace {
double host_load(const std::vector<double>& host) {
  double total = 0.0;
  for (double p : host) total += p;
  return total;
}
}  // namespace

MigrationResult rebalance_by_migration(std::vector<std::vector<double>>& hosts,
                                       double threshold,
                                       std::size_t max_migrations) {
  PDC_CHECK(!hosts.empty());
  MigrationResult result;

  auto spread = [&] {
    double lo = std::numeric_limits<double>::max(), hi = 0.0;
    for (const auto& host : hosts) {
      const double load = host_load(host);
      lo = std::min(lo, load);
      hi = std::max(hi, load);
    }
    return std::pair{lo, hi};
  };

  auto [lo0, hi0] = spread();
  result.initial_imbalance = hi0 - lo0;

  while (result.migrations < max_migrations) {
    const auto [lo, hi] = spread();
    if (hi - lo <= threshold) break;
    std::size_t heavy = 0, light = 0;
    for (std::size_t h = 0; h < hosts.size(); ++h) {
      if (host_load(hosts[h]) == hi) heavy = h;
      if (host_load(hosts[h]) == lo) light = h;
    }
    // Move the largest process that still reduces the imbalance (load at
    // most the gap; moving more would just swap the roles).
    const double gap = hi - lo;
    std::size_t best = SIZE_MAX;
    for (std::size_t p = 0; p < hosts[heavy].size(); ++p) {
      if (hosts[heavy][p] < gap &&
          (best == SIZE_MAX || hosts[heavy][p] > hosts[heavy][best])) {
        best = p;
      }
    }
    if (best == SIZE_MAX) break;  // nothing movable without overshooting
    hosts[light].push_back(hosts[heavy][best]);
    hosts[heavy].erase(hosts[heavy].begin() + static_cast<std::ptrdiff_t>(best));
    ++result.migrations;
  }

  const auto [lo1, hi1] = spread();
  result.final_imbalance = hi1 - lo1;
  return result;
}

}  // namespace pdc::dist
