// Leader election: Chang–Roberts ring and the bully algorithm.
//
// Both run over the message-passing runtime with explicit liveness masks —
// a "dead" rank simply never sends or answers, which is exactly how
// failure manifests to the algorithms. Chang–Roberts is deterministic and
// message-frugal; bully trades many messages for fast takeover by the
// highest surviving id (detected through reply timeouts).
#pragma once

#include <chrono>
#include <vector>

#include "mp/comm.hpp"

namespace pdc::dist {

struct ElectionResult {
  int leader = -1;
  std::uint64_t messages_sent = 0;
};

/// Chang–Roberts election on the ring of alive ranks. Every alive rank
/// must call this; ranks with `initiate` true start an election (at least
/// one must). Dead ranks (alive[rank] == false) return immediately with
/// leader -1. The elected leader is the highest alive rank.
ElectionResult ring_election(mp::Communicator& comm,
                             const std::vector<bool>& alive, bool initiate);

/// Bully election. `initiator` starts it; alive ranks serve until a
/// coordinator announcement arrives. Timeouts (real time) detect dead
/// higher-ups. The winner is the highest alive rank.
ElectionResult bully_election(mp::Communicator& comm,
                              const std::vector<bool>& alive, int initiator,
                              std::chrono::milliseconds timeout =
                                  std::chrono::milliseconds(50));

}  // namespace pdc::dist
