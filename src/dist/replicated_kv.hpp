// ReplicatedKV: a linearizable key-value store replicated with dist::Raft.
//
// Every rank of the communicator runs one ReplicatedKV node: a KvMachine
// (the Raft state machine) plus the client/server glue. Writes (put, cas)
// are routed to the leader, appended to the replicated log, and
// acknowledged only after commit + apply; reads use Raft's read-index
// protocol (one confirmed heartbeat round, §6.4) so they are served from
// the leader's applied state without writing the log — both give the
// store linearizability, which tests/raft_stress_test checks directly
// with testkit::LinearizabilityChecker under fault injection.
//
// Exactly-once semantics: a client retries a timed-out request with the
// same sequence number, and a retry may land after the original committed
// (duplicate log entries). The state machine keeps a per-client session
// {last applied seq, cached reply}; a duplicate seq returns the cached
// reply without re-applying. This is the standard Raft session trick
// (§6.3) and is what makes "resend until acked" safe for non-idempotent
// cas.
//
// Client calls (put/get/cas) block, pumping this node's own step() and
// testkit::poll_pause so they compose with the sim scheduler's virtual
// clock; a call that exhausts `op_timeout_ms` returns status kTimeout and
// — when a testkit::HistoryRecorder is attached — leaves the recorded
// operation pending, exactly the ambiguity a crashed client leaves.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dist/raft.hpp"
#include "testkit/linearizability.hpp"

namespace pdc::dist {

/// Raft state machine: string map plus client sessions for exactly-once
/// application of retried commands. Both are part of the snapshot image.
class KvMachine : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(
      std::uint64_t index, const std::vector<std::uint8_t>& command) override;
  std::vector<std::uint8_t> snapshot_image() override;
  void restore(const std::vector<std::uint8_t>& image) override;

  [[nodiscard]] const std::map<std::string, std::string>& data() const {
    return data_;
  }

 private:
  struct Session {
    std::uint64_t last_seq = 0;
    std::vector<std::uint8_t> reply;  // reply to last_seq
  };

  std::map<std::string, std::string> data_;
  std::map<std::int32_t, Session> sessions_;
};

struct KvConfig {
  RaftOptions raft;
  double retry_ms = 8.0;       // client resend cadence
  double op_timeout_ms = 400.0;  // client gives up (op recorded as pending)
  double poll_ms = 0.2;        // virtual-clock pause per client poll turn
  /// First client sequence numbers start above this value. A rank that
  /// crashes and rejoins must pass the number of ops it already issued,
  /// or the session layer would treat its new ops as duplicates.
  std::uint64_t base_seq = 0;
};

struct KvResult {
  enum class Status : std::uint8_t {
    kOk,       // put applied / get hit / cas swapped
    kAbsent,   // get: key not present
    kFailed,   // cas: compare failed
    kTimeout,  // no acknowledgement within op_timeout_ms
  };

  Status status = Status::kTimeout;
  std::string value;  // get: the observed value

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  [[nodiscard]] bool timed_out() const { return status == Status::kTimeout; }
};

const char* to_string(KvResult::Status status);

class ReplicatedKV {
 public:
  /// `storage` is the rank's durable Raft state (caller-owned, survives
  /// node destruction — see RaftPersistentState).
  ReplicatedKV(mp::Communicator& comm, RaftPersistentState& storage,
               KvConfig config = {});

  ReplicatedKV(const ReplicatedKV&) = delete;
  ReplicatedKV& operator=(const ReplicatedKV&) = delete;

  /// One service-loop turn: Raft tick, client-request intake, pending
  /// write/read resolution. Pump from the rank body; client calls pump it
  /// too while blocked.
  void step();

  // Blocking client operations (issued from this rank, routed to the
  // current leader, retried on the retry cadence until op_timeout_ms).
  KvResult put(const std::string& key, const std::string& value);
  KvResult get(const std::string& key);
  KvResult cas(const std::string& key, const std::string& expected,
               const std::string& desired);

  /// Attach a recorder: every client op is bracketed invoke/complete, and
  /// timed-out ops stay pending for the checker to reason about.
  void set_recorder(testkit::HistoryRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] const RaftNode& raft() const { return raft_; }
  [[nodiscard]] RaftNode& raft() { return raft_; }
  [[nodiscard]] bool is_leader() const { return raft_.role() == RaftRole::kLeader; }
  [[nodiscard]] const KvMachine& machine() const { return machine_; }

 private:
  // Client-facing tags continue the raft tag block (70..75).
  static constexpr int kTagClientRequest = 76;
  static constexpr int kTagClientReply = 77;

  enum class OpKind : std::uint8_t { kPut = 1, kGet = 2, kCas = 3 };
  enum class WireStatus : std::uint8_t {
    kRetry = 0,  // not the leader (value carries no data; hint attached)
    kOk = 1,
    kAbsent = 2,
    kFailed = 3,
  };

  struct PendingWrite {
    std::uint64_t index = 0;  // log index the command was submitted at
    std::uint64_t term = 0;   // term it was submitted in
    int client = -1;
    std::uint64_t seq = 0;
    obs::ActiveSpan span;     // "server.drain": intake -> reply sent
  };

  struct PendingRead {
    int client = -1;
    std::uint64_t seq = 0;
    std::string key;
    std::uint64_t read_index = 0;  // max(commit index, term-start barrier) at arrival
    std::uint64_t round = 0;       // heartbeat round that must be confirmed
    obs::ActiveSpan span;          // "server.drain": intake -> reply sent
  };

  void serve_requests();
  void resolve_reads();
  void flush_pending_retry();
  void on_applied(std::uint64_t index, std::uint64_t term,
                  const std::vector<std::uint8_t>& command,
                  const std::vector<std::uint8_t>& reply);
  void reply_to(int client, std::uint64_t seq, WireStatus status,
                const std::string& value = {});
  KvResult run_op(OpKind kind, const std::string& key, const std::string& arg,
                  const std::string& expected);

  mp::Communicator& comm_;
  KvConfig config_;
  KvMachine machine_;
  RaftNode raft_;
  testkit::HistoryRecorder* recorder_ = nullptr;

  std::deque<PendingWrite> pending_writes_;
  std::deque<PendingRead> pending_reads_;
  std::uint64_t next_seq_;
};

}  // namespace pdc::dist
