// Raft replicated log over the message-passing runtime (Ongaro &
// Ousterhout, "In Search of an Understandable Consensus Algorithm").
//
// One RaftNode runs per rank of an mp::Communicator. The protocol maps
// onto the runtime the way the other dist lessons do: RPCs are tagged
// eager messages, timers run on dist::RetryClock (virtual clock under
// testkit::SimScheduler, wall clock otherwise), and every message may be
// dropped / duplicated / reordered / partitioned by a
// testkit::FaultInjector attached to the World.
//
// What is implemented, in paper terms:
//  - leader election with randomized timeouts (§5.2), the election-safety
//    and log-completeness vote rule (§5.4.1);
//  - log replication with the AppendEntries consistency check, conflict
//    truncation, and quorum match-index commit advancement restricted to
//    current-term entries (§5.3, Figure 8 rule);
//  - a no-op barrier entry appended the moment a leader takes office, so
//    the new term commits (and therefore exposes) the previous terms'
//    entries without waiting for client traffic;
//  - snapshot-based log compaction and InstallSnapshot for followers
//    whose next entry was already compacted away (§7), reusing the
//    dist::snapshot idea of a state image plus a cut index;
//  - read-index reads: a leader confirms it is still the leader with one
//    heartbeat round before serving a read at its commit index (§6.4),
//    surfaced as begin_read_round()/confirmed_round();
//  - crash recovery: all durable state lives in a caller-owned
//    RaftPersistentState, so destroying a node and constructing a new one
//    over the same storage is exactly a crash + rejoin.
//
// `RaftOptions::unsafe_early_commit` deliberately breaks the commit rule
// (entries "commit" the moment the leader appends them, before any
// quorum). It exists so the testkit::LinearizabilityChecker sweeps in
// tests/raft_test and tests/raft_stress_test can demonstrate that the
// harness catches a real protocol bug — never enable it otherwise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/retry_clock.hpp"
#include "mp/comm.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"

namespace pdc::dist {

namespace wire {

/// Minimal byte codec for the variable-length Raft and KV messages (the
/// fixed-size trivially-copyable structs the other dist protocols send
/// don't fit log entries and string keys).
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v))); }
  void bytes(const std::vector<std::uint8_t>& v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  std::uint8_t u8() {
    PDC_CHECK_MSG(pos_ < buf_.size(), "truncated raft message");
    return buf_[pos_++];
  }
  std::uint64_t u64() {
    PDC_CHECK_MSG(pos_ + 8 <= buf_.size(), "truncated raft message");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf_[pos_++]} << (8 * i);
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(static_cast<std::uint32_t>(u64())); }
  std::vector<std::uint8_t> bytes() {
    const std::uint64_t n = u64();
    PDC_CHECK_MSG(pos_ + n <= buf_.size(), "truncated raft message");
    std::vector<std::uint8_t> v(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    PDC_CHECK_MSG(pos_ + n <= buf_.size(), "truncated raft message");
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }
  [[nodiscard]] bool done() const { return pos_ == buf_.size(); }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace wire

enum class RaftRole : std::uint8_t { kFollower, kCandidate, kLeader };

const char* to_string(RaftRole role);

struct RaftLogEntry {
  std::uint64_t term = 0;
  std::vector<std::uint8_t> command;  // empty = the term-start no-op entry
};

/// Everything a rank must not lose across a crash (Figure 2's persistent
/// state plus the compaction snapshot). Owned by the caller: construct a
/// RaftNode over it, destroy the node to "crash" the rank, construct a
/// fresh node over the same struct to rejoin.
struct RaftPersistentState {
  std::uint64_t current_term = 0;
  int voted_for = -1;
  std::uint64_t snapshot_index = 0;  // last index covered by `snapshot`
  std::uint64_t snapshot_term = 0;
  std::vector<std::uint8_t> snapshot;  // state-machine image at snapshot_index
  std::vector<RaftLogEntry> log;       // entries snapshot_index+1 .. onward
};

/// The replicated service: commands are applied in log order, exactly
/// once per index, on every rank.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Applies one committed command; the return value is the client reply
  /// (delivered by the apply listener on the rank that accepted the
  /// command).
  virtual std::vector<std::uint8_t> apply(
      std::uint64_t index, const std::vector<std::uint8_t>& command) = 0;
  /// Serializes the full state (for compaction / InstallSnapshot).
  virtual std::vector<std::uint8_t> snapshot_image() = 0;
  /// Replaces the state with a serialized image.
  virtual void restore(const std::vector<std::uint8_t>& image) = 0;
};

struct RaftOptions {
  double election_timeout_min_ms = 12.0;
  double election_timeout_max_ms = 24.0;
  double heartbeat_ms = 3.0;
  std::uint64_t seed = 0x7af7;  // mixed with the rank for timeout jitter
  std::size_t snapshot_threshold = 0;  // compact when log exceeds this (0 = never)
  std::size_t max_entries_per_append = 16;
  bool unsafe_early_commit = false;  // see file comment — tests only
};

class RaftNode {
 public:
  using ApplyListener = std::function<void(
      std::uint64_t index, std::uint64_t term,
      const std::vector<std::uint8_t>& command,
      const std::vector<std::uint8_t>& reply)>;

  RaftNode(mp::Communicator& comm, StateMachine& machine,
           RaftPersistentState& storage, RaftOptions options = {});

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// One event-loop turn: drain Raft traffic, fire timers, apply newly
  /// committed entries. Callers pump this from their service loop
  /// (interleaved with testkit::poll_pause so the virtual clock advances).
  void tick();

  /// Leader: appends a command and returns its log index (committed and
  /// applied later, reported through the apply listener). Followers and
  /// candidates return nullopt — redirect the client at `leader_hint()`.
  /// A valid `trace` joins the entry to a request trace: a raft.replicate
  /// span covers submit -> commit (AppendEntries carrying the entry are
  /// stamped with it, so follower raft.append spans nest under it) and a
  /// raft.apply span brackets the state-machine apply.
  std::optional<std::uint64_t> submit(std::vector<std::uint8_t> command,
                                      obs::SpanContext trace = {});

  /// Invoked once per applied entry, in index order (no-op entries
  /// included, with an empty command and reply).
  void set_apply_listener(ApplyListener listener) {
    listener_ = std::move(listener);
  }

  /// Read-index support (leader only): stamps the current heartbeat round
  /// and broadcasts it; once `confirmed_round() >= begin_read_round()`'s
  /// return, a quorum has acked a heartbeat sent after the read arrived,
  /// so this node was still the leader and its commit index is a valid
  /// read snapshot.
  std::uint64_t begin_read_round();
  [[nodiscard]] std::uint64_t confirmed_round() const { return confirmed_round_; }
  /// Index of this term's no-op barrier entry (leader only). A new
  /// leader's commit index may lag the true committed prefix until the
  /// barrier commits (§8), so read-index reads must wait for
  /// `last_applied() >= term_start_index()` before serving.
  [[nodiscard]] std::uint64_t term_start_index() const { return term_start_index_; }

  // ---------------------------------------------------- introspection
  [[nodiscard]] RaftRole role() const { return role_; }
  [[nodiscard]] std::uint64_t current_term() const { return storage_.current_term; }
  [[nodiscard]] int leader_hint() const { return leader_hint_; }
  [[nodiscard]] std::uint64_t commit_index() const { return commit_index_; }
  [[nodiscard]] std::uint64_t last_applied() const { return last_applied_; }
  [[nodiscard]] std::uint64_t last_index() const {
    return storage_.snapshot_index + storage_.log.size();
  }
  /// Term of `index` (0 for index 0). Checked: the index must not be
  /// compacted away or beyond the log.
  [[nodiscard]] std::uint64_t term_at(std::uint64_t index) const;
  /// Entry at `index`, or nullptr when compacted / beyond the log.
  [[nodiscard]] const RaftLogEntry* entry(std::uint64_t index) const;
  [[nodiscard]] std::uint64_t snapshots_installed() const {
    return snapshots_installed_;
  }
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  // Message tags (dist-wide tag map: 2PC 40s, clock-sync 60s, raft 70s).
  static constexpr int kTagRequestVote = 70;
  static constexpr int kTagVoteReply = 71;
  static constexpr int kTagAppend = 72;
  static constexpr int kTagAppendReply = 73;
  static constexpr int kTagInstallSnapshot = 74;
  static constexpr int kTagSnapshotReply = 75;

  void drain_messages();
  void handle_request_vote(int src, const std::vector<std::uint8_t>& raw);
  void handle_vote_reply(int src, const std::vector<std::uint8_t>& raw);
  void handle_append(int src, const std::vector<std::uint8_t>& raw);
  void handle_append_reply(int src, const std::vector<std::uint8_t>& raw);
  void handle_install_snapshot(int src, const std::vector<std::uint8_t>& raw);
  void handle_snapshot_reply(int src, const std::vector<std::uint8_t>& raw);

  void start_election();
  void become_leader();
  void step_down(std::uint64_t term);
  void reset_election_timer();
  void broadcast_heartbeats();
  void replicate(int peer);
  void advance_commit();
  void apply_committed();
  void maybe_compact();
  void update_confirmed_round();
  void send(int dest, int tag, std::vector<std::uint8_t> payload);

  [[nodiscard]] int quorum() const { return comm_.size() / 2 + 1; }
  [[nodiscard]] int granted_votes() const {
    return static_cast<int>(
        std::count(vote_granted_.begin(), vote_granted_.end(), true));
  }
  void export_gauges();

  mp::Communicator& comm_;
  StateMachine& machine_;
  RaftPersistentState& storage_;
  RaftOptions options_;
  support::Rng rng_;

  RaftRole role_ = RaftRole::kFollower;
  int leader_hint_ = -1;
  std::uint64_t commit_index_ = 0;
  std::uint64_t last_applied_ = 0;
  ApplyListener listener_;

  // Candidate state: which ranks granted us a vote this election. A set
  // (not a counter) so duplicated VoteReply deliveries from the fault
  // injector stay idempotent — a candidate must count distinct voters.
  std::vector<bool> vote_granted_;

  // Leader state (reinitialized each term).
  std::vector<std::uint64_t> next_index_;
  std::vector<std::uint64_t> match_index_;
  std::vector<std::uint64_t> acked_round_;
  std::uint64_t round_ = 0;            // heartbeat round counter (this term)
  std::uint64_t confirmed_round_ = 0;  // highest quorum-acked round
  std::uint64_t term_start_index_ = 0; // index of this term's no-op barrier
  std::vector<std::pair<std::uint64_t, double>> submit_ms_;  // index -> submit time

  /// Uncommitted traced entries (leader only, cleared like submit_ms_ on
  /// step-down): the replicate span ends when the entry commits; the
  /// submitted context parents the raft.apply span.
  struct TracedEntry {
    std::uint64_t index = 0;
    obs::SpanContext ctx;         // the submitter's span (parents apply)
    obs::ActiveSpan replicate;    // submit -> commit
  };
  std::vector<TracedEntry> traced_;

  RetryClock election_timer_;
  RetryClock heartbeat_timer_;
  RetryClock age_;  // time base for the commit-latency histogram
  double election_timeout_ms_ = 0.0;

  std::uint64_t snapshots_installed_ = 0;
  std::uint64_t messages_sent_ = 0;

  // Per-rank labeled series, cached once (see mp::Communicator's rank
  // counters for the pattern). Gauges are additive, so the last exported
  // value is kept to emit deltas.
  obs::Gauge* term_gauge_ = nullptr;      // pdc.raft.term{rank=}
  obs::Gauge* commit_gauge_ = nullptr;    // pdc.raft.commit_index{rank=}
  obs::Histogram* append_hist_ = nullptr; // pdc.raft.append_us{rank=}
  std::int64_t exported_term_ = 0;
  std::int64_t exported_commit_ = 0;
};

}  // namespace pdc::dist
