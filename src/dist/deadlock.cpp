#include "dist/deadlock.hpp"

#include <deque>

namespace pdc::dist {

CmhDeadlockDetector::CmhDeadlockDetector(std::size_t processes)
    : waits_for_(processes) {}

void CmhDeadlockDetector::add_wait(std::size_t waiter, std::size_t holder) {
  PDC_CHECK(waiter < waits_for_.size());
  PDC_CHECK(holder < waits_for_.size());
  PDC_CHECK_MSG(waiter != holder, "a process cannot wait on itself");
  waits_for_[waiter].insert(holder);
}

void CmhDeadlockDetector::remove_wait(std::size_t waiter, std::size_t holder) {
  PDC_CHECK(waiter < waits_for_.size());
  waits_for_[waiter].erase(holder);
}

bool CmhDeadlockDetector::detect(std::size_t initiator) {
  PDC_CHECK(initiator < waits_for_.size());
  probes_sent_ = 0;

  struct Probe {
    std::size_t initiator;
    std::size_t to;
  };
  // dependent[k]: process k already propagated a probe of this initiator —
  // the duplicate-suppression state each site keeps.
  std::vector<bool> dependent(waits_for_.size(), false);
  std::deque<Probe> wire;

  // A blocked initiator probes everything it waits for.
  for (std::size_t holder : waits_for_[initiator]) {
    wire.push_back({initiator, holder});
    ++probes_sent_;
  }

  while (!wire.empty()) {
    const Probe probe = wire.front();
    wire.pop_front();
    if (probe.to == probe.initiator) return true;  // the probe came home
    if (dependent[probe.to]) continue;
    dependent[probe.to] = true;
    for (std::size_t next : waits_for_[probe.to]) {
      wire.push_back({probe.initiator, next});
      ++probes_sent_;
    }
  }
  return false;
}

bool CmhDeadlockDetector::detect_any() {
  for (std::size_t k = 0; k < waits_for_.size(); ++k) {
    if (!waits_for_[k].empty() && detect(k)) return true;
  }
  return false;
}

}  // namespace pdc::dist
