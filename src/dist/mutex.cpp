#include "dist/mutex.hpp"

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::dist {

RicartAgrawala::RicartAgrawala(mp::Communicator& comm) : comm_(comm) {
  obs::set_trace_thread_name("mutex.rank",
                             static_cast<std::uint64_t>(comm.rank()));
}

bool RicartAgrawala::theirs_wins(const RequestMsg& theirs) const {
  if (!requesting_) return true;  // I don't want it: always grant
  if (theirs.timestamp != my_timestamp_) {
    return theirs.timestamp < my_timestamp_;
  }
  return theirs.rank < comm_.rank();  // rank breaks timestamp ties
}

void RicartAgrawala::pump_one() {
  testkit::yield_point("ra.pump");
  // Wildcard probe keeps per-sender FIFO order across message kinds.
  const mp::RecvInfo info = comm_.probe(mp::kAnySource, mp::kAnyTag);
  switch (info.tag) {
    case kTagRequest: {
      const auto request = comm_.recv_value<RequestMsg>(info.source, kTagRequest);
      clock_.merge(request.timestamp);
      if (theirs_wins(request)) {
        comm_.send_value(char{1}, request.rank, kTagReply);
        ++messages_sent_;
        PDC_OBS_COUNT("pdc.mutex.replies");
      } else {
        deferred_.push_back(request.rank);
        PDC_OBS_COUNT("pdc.mutex.deferred");
      }
      return;
    }
    case kTagReply: {
      (void)comm_.recv_value<char>(info.source, kTagReply);
      --replies_pending_;
      return;
    }
    case kTagDone: {
      (void)comm_.recv_value<char>(info.source, kTagDone);
      ++done_received_;
      return;
    }
    default:
      PDC_CHECK_MSG(false, "unexpected message tag in RicartAgrawala");
  }
}

void RicartAgrawala::enter() {
  testkit::yield_point("ra.enter");
  PDC_CHECK_MSG(!requesting_, "enter() while already holding/awaiting the CS");
  obs::ScopedSpan span("mutex.acquire",
                       static_cast<std::uint64_t>(comm_.rank()));
  requesting_ = true;
  my_timestamp_ = clock_.tick();
  const RequestMsg request{my_timestamp_, comm_.rank()};
  replies_pending_ = comm_.size() - 1;
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer == comm_.rank()) continue;
    comm_.send_value(request, peer, kTagRequest);
    ++messages_sent_;
    PDC_OBS_COUNT("pdc.mutex.requests");
  }
  while (replies_pending_ > 0) pump_one();
  obs::trace_instant("mutex.enter", static_cast<std::uint64_t>(my_timestamp_));
}

void RicartAgrawala::leave() {
  testkit::yield_point("ra.leave");
  PDC_CHECK_MSG(requesting_, "leave() without enter()");
  requesting_ = false;
  obs::trace_instant("mutex.release");
  for (int peer : deferred_) {
    comm_.send_value(char{1}, peer, kTagReply);
    ++messages_sent_;
    PDC_OBS_COUNT("pdc.mutex.replies");
  }
  deferred_.clear();
}

void RicartAgrawala::finish() {
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer == comm_.rank()) continue;
    comm_.send_value(char{1}, peer, kTagDone);
    ++messages_sent_;
  }
  // Keep serving requests until everyone announced completion; per-sender
  // FIFO guarantees no request can arrive after its sender's DONE.
  while (done_received_ < comm_.size() - 1) pump_one();
}

std::uint64_t run_token_ring(mp::Communicator& comm, std::size_t entries,
                             const std::function<void()>& critical_section) {
  constexpr int kTagToken = 10;
  constexpr std::uint64_t kStop = UINT64_MAX;

  const int p = comm.size();
  const int next = (comm.rank() + 1) % p;
  obs::set_trace_thread_name("mutex.rank",
                             static_cast<std::uint64_t>(comm.rank()));
  obs::ScopedSpan span("mutex.token_ring",
                       static_cast<std::uint64_t>(comm.rank()));
  const std::uint64_t total_needed = static_cast<std::uint64_t>(p) * entries;
  std::size_t mine_left = entries;
  std::uint64_t hops = 0;

  if (p == 1) {
    for (std::size_t i = 0; i < entries; ++i) critical_section();
    return 0;
  }

  // Token value = critical sections completed so far. Rank 0 mints it.
  std::uint64_t token = 0;
  bool holding = comm.rank() == 0;
  for (;;) {
    testkit::yield_point("token_ring.hop");
    if (!holding) {
      token = comm.recv_value<std::uint64_t>((comm.rank() - 1 + p) % p, kTagToken);
      if (token == kStop) {
        // Forward the stop marker once, then leave the ring.
        comm.send_value(kStop, next, kTagToken);
        ++hops;
        PDC_OBS_COUNT("pdc.mutex.token_hops", hops);
        return hops;
      }
    }
    holding = false;
    if (mine_left > 0) {
      critical_section();
      --mine_left;
      ++token;
    }
    if (token == total_needed) {
      comm.send_value(kStop, next, kTagToken);
      ++hops;
      PDC_OBS_COUNT("pdc.mutex.token_hops", hops);
      return hops;  // originator exits; the marker circles the ring once
    }
    comm.send_value(token, next, kTagToken);
    ++hops;
  }
}

}  // namespace pdc::dist
