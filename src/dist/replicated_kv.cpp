#include "dist/replicated_kv.hpp"

#include <algorithm>
#include <utility>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::dist {

const char* to_string(KvResult::Status status) {
  switch (status) {
    case KvResult::Status::kOk: return "ok";
    case KvResult::Status::kAbsent: return "absent";
    case KvResult::Status::kFailed: return "failed";
    case KvResult::Status::kTimeout: return "timeout";
  }
  return "?";
}

// ------------------------------------------------------------- KvMachine

std::vector<std::uint8_t> KvMachine::apply(
    std::uint64_t index, const std::vector<std::uint8_t>& command) {
  (void)index;
  wire::Reader r(command);
  const auto kind = r.u8();
  const std::int32_t client = r.i32();
  const std::uint64_t seq = r.u64();
  const std::string key = r.str();
  const std::string arg = r.str();
  const std::string expected = r.str();
  PDC_CHECK_MSG(r.done(), "trailing bytes in kv command");

  // Session dedup (§6.3): a retried command that already applied must not
  // apply twice — return the reply the first application produced.
  auto& session = sessions_[client];
  if (seq <= session.last_seq) {
    PDC_OBS_COUNT("pdc.kv.deduplicated");
    return session.reply;
  }

  wire::Writer w;
  if (kind == 1) {  // put
    data_[key] = arg;
    w.u8(1);  // ok
    w.str("");
  } else {  // cas
    auto it = data_.find(key);
    const bool swapped = it != data_.end() && it->second == expected;
    if (swapped) it->second = arg;
    w.u8(swapped ? 1 : 3);  // ok / failed
    w.str("");
  }
  session.last_seq = seq;
  session.reply = w.take();
  return session.reply;
}

std::vector<std::uint8_t> KvMachine::snapshot_image() {
  wire::Writer w;
  w.u64(data_.size());
  for (const auto& [key, value] : data_) {
    w.str(key);
    w.str(value);
  }
  w.u64(sessions_.size());
  for (const auto& [client, session] : sessions_) {
    w.i32(client);
    w.u64(session.last_seq);
    w.bytes(session.reply);
  }
  return w.take();
}

void KvMachine::restore(const std::vector<std::uint8_t>& image) {
  data_.clear();
  sessions_.clear();
  if (image.empty()) return;  // empty image = empty store
  wire::Reader r(image);
  const std::uint64_t entries = r.u64();
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::string key = r.str();
    data_[key] = r.str();
  }
  const std::uint64_t clients = r.u64();
  for (std::uint64_t i = 0; i < clients; ++i) {
    const std::int32_t client = r.i32();
    auto& session = sessions_[client];
    session.last_seq = r.u64();
    session.reply = r.bytes();
  }
  PDC_CHECK_MSG(r.done(), "trailing bytes in kv snapshot");
}

// ----------------------------------------------------------- ReplicatedKV

ReplicatedKV::ReplicatedKV(mp::Communicator& comm, RaftPersistentState& storage,
                           KvConfig config)
    : comm_(comm), config_(config), raft_(comm, machine_, storage, config.raft),
      next_seq_(config.base_seq) {
  raft_.set_apply_listener(
      [this](std::uint64_t index, std::uint64_t term,
             const std::vector<std::uint8_t>& command,
             const std::vector<std::uint8_t>& reply) {
        on_applied(index, term, command, reply);
      });
}

void ReplicatedKV::step() {
  raft_.tick();
  serve_requests();
  if (!is_leader()) flush_pending_retry();
  resolve_reads();
}

void ReplicatedKV::serve_requests() {
  while (auto info = comm_.iprobe(mp::kAnySource, kTagClientRequest)) {
    const int src = info->source;
    const auto raw = comm_.recv_vector<std::uint8_t>(src, kTagClientRequest);
    // recv parked the request's trace context (if any) in the incoming
    // slot; claim it now so it cannot leak onto an unrelated message.
    const obs::SpanContext incoming = obs::take_incoming_span();
    wire::Reader r(raw);
    const auto kind = static_cast<OpKind>(r.u8());
    const std::uint64_t seq = r.u64();
    const std::string key = r.str();
    const std::string arg = r.str();
    const std::string expected = r.str();
    PDC_OBS_COUNT("pdc.kv.requests");

    if (!is_leader()) {
      reply_to(src, seq, WireStatus::kRetry);
      continue;
    }
    if (kind == OpKind::kGet) {
      // Read-index (§6.4): snapshot the commit index, then require one
      // quorum-confirmed heartbeat round before serving — proves this
      // node was still the leader after the read arrived. Floor the
      // snapshot at the term-start barrier: a fresh leader's commit index
      // can lag the true committed prefix until its no-op commits
      // (Figure 8), and serving below the barrier could miss an
      // acknowledged write from a prior term.
      const std::uint64_t read_index =
          std::max(raft_.commit_index(), raft_.term_start_index());
      const std::uint64_t round = raft_.begin_read_round();
      pending_reads_.push_back(PendingRead{src, seq, key, read_index, round,
                                           obs::span_begin("server.drain",
                                                           incoming)});
      continue;
    }
    wire::Writer w;
    w.u8(static_cast<std::uint8_t>(kind));
    w.i32(src);
    w.u64(seq);
    w.str(key);
    w.str(arg);
    w.str(expected);
    // Register the pending write under the index submit() will assign
    // BEFORE submitting: a synchronously-committing entry (single-node
    // cluster, unsafe_early_commit) fires the apply listener from inside
    // submit(), and the listener must find this record to send the reply.
    const std::uint64_t predicted = raft_.last_index() + 1;
    pending_writes_.push_back(
        PendingWrite{predicted, raft_.current_term(), src, seq,
                     obs::span_begin("server.drain", incoming)});
    const auto index =
        raft_.submit(w.take(), pending_writes_.back().span.context());
    if (!index) {
      obs::span_end(pending_writes_.back().span, /*error=*/true);
      pending_writes_.pop_back();
      reply_to(src, seq, WireStatus::kRetry);
      continue;
    }
    PDC_CHECK(*index == predicted);
  }
}

void ReplicatedKV::on_applied(std::uint64_t index, std::uint64_t term,
                              const std::vector<std::uint8_t>& command,
                              const std::vector<std::uint8_t>& reply) {
  (void)command;
  for (auto it = pending_writes_.begin(); it != pending_writes_.end(); ++it) {
    if (it->index != index) continue;
    if (it->term != term) {
      // A different entry (from a newer leader) landed at our index: the
      // submitted command was truncated away. Tell the client to retry.
      reply_to(it->client, it->seq, WireStatus::kRetry);
      obs::span_end(it->span, /*error=*/true);
    } else {
      wire::Reader r(reply);
      const auto status = static_cast<WireStatus>(r.u8());
      const std::string value = r.str();
      reply_to(it->client, it->seq, status, value);
      obs::span_end(it->span);
    }
    pending_writes_.erase(it);
    return;
  }
}

void ReplicatedKV::resolve_reads() {
  // FIFO: the front read has the smallest (round, read_index), so if it
  // cannot be served yet, neither can anything behind it.
  while (!pending_reads_.empty()) {
    PendingRead& read = pending_reads_.front();
    if (raft_.confirmed_round() < read.round ||
        raft_.last_applied() < read.read_index) {
      break;
    }
    const auto& data = machine_.data();
    const auto it = data.find(read.key);
    if (it != data.end()) {
      reply_to(read.client, read.seq, WireStatus::kOk, it->second);
    } else {
      reply_to(read.client, read.seq, WireStatus::kAbsent);
    }
    obs::span_end(read.span);
    PDC_OBS_COUNT("pdc.kv.reads_served");
    pending_reads_.pop_front();
  }
}

void ReplicatedKV::flush_pending_retry() {
  for (PendingWrite& w : pending_writes_) {
    reply_to(w.client, w.seq, WireStatus::kRetry);
    obs::span_end(w.span, /*error=*/true);
  }
  for (PendingRead& read : pending_reads_) {
    reply_to(read.client, read.seq, WireStatus::kRetry);
    obs::span_end(read.span, /*error=*/true);
  }
  pending_writes_.clear();
  pending_reads_.clear();
}

void ReplicatedKV::reply_to(int client, std::uint64_t seq, WireStatus status,
                            const std::string& value) {
  wire::Writer w;
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(status));
  w.i32(raft_.leader_hint());
  w.str(value);
  comm_.send_vector(w.take(), client, kTagClientReply);
}

KvResult ReplicatedKV::put(const std::string& key, const std::string& value) {
  return run_op(OpKind::kPut, key, value, "");
}

KvResult ReplicatedKV::get(const std::string& key) {
  return run_op(OpKind::kGet, key, "", "");
}

KvResult ReplicatedKV::cas(const std::string& key, const std::string& expected,
                           const std::string& desired) {
  return run_op(OpKind::kCas, key, desired, expected);
}

KvResult ReplicatedKV::run_op(OpKind kind, const std::string& key,
                              const std::string& arg,
                              const std::string& expected) {
  const std::uint64_t seq = ++next_seq_;
  std::size_t ticket = 0;
  if (recorder_ != nullptr) {
    testkit::KvOp op;
    op.kind = kind == OpKind::kPut   ? testkit::KvOp::Kind::kPut
              : kind == OpKind::kGet ? testkit::KvOp::Kind::kGet
                                     : testkit::KvOp::Kind::kCas;
    op.key = key;
    op.arg = arg;
    op.expected = expected;
    op.client = comm_.rank();
    ticket = recorder_->invoke(std::move(op));
  }

  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(seq);
  w.str(key);
  w.str(arg);
  w.str(expected);
  const auto request = w.take();

  auto send_to = [&](int target) {
    comm_.send_vector(request, target, kTagClientRequest);
  };
  int target = raft_.leader_hint() >= 0 ? raft_.leader_hint() : comm_.rank();
  send_to(target);
  PDC_OBS_COUNT("pdc.kv.ops");

  RetryClock deadline;
  RetryClock retry;
  KvResult out;
  bool done = false;
  auto retarget = [&](int hint) {
    if (hint >= 0 && hint != target) {
      target = hint;
    } else {
      target = (target + 1) % comm_.size();  // probe the ring for a leader
    }
  };
  while (!done) {
    step();
    while (auto info = comm_.iprobe(mp::kAnySource, kTagClientReply)) {
      const auto raw = comm_.recv_vector<std::uint8_t>(info->source,
                                                       kTagClientReply);
      wire::Reader r(raw);
      const std::uint64_t rseq = r.u64();
      const auto status = static_cast<WireStatus>(r.u8());
      const int hint = r.i32();
      std::string value = r.str();
      if (rseq != seq) continue;  // reply to an op we already gave up on
      if (status == WireStatus::kRetry) {
        retarget(hint);
        send_to(target);
        retry.reset();
        PDC_OBS_COUNT("pdc.kv.redirects");
        continue;
      }
      out.status = status == WireStatus::kOk       ? KvResult::Status::kOk
                   : status == WireStatus::kAbsent ? KvResult::Status::kAbsent
                                                   : KvResult::Status::kFailed;
      out.value = std::move(value);
      done = true;
      break;
    }
    if (done) break;
    if (deadline.elapsed_millis() >= config_.op_timeout_ms) {
      out.status = KvResult::Status::kTimeout;
      PDC_OBS_COUNT("pdc.kv.timeouts");
      break;
    }
    if (retry.elapsed_millis() >= config_.retry_ms) {
      // Same seq on every resend: the session layer deduplicates, so a
      // retry landing after the original applied is harmless.
      retarget(raft_.leader_hint());
      send_to(target);
      retry.reset();
      PDC_OBS_COUNT("pdc.kv.retransmits");
    }
    testkit::poll_pause("kv.client", config_.poll_ms * 1e-3);
  }

  if (recorder_ != nullptr) {
    if (out.status == KvResult::Status::kOk) {
      recorder_->complete(ticket, true,
                          kind == OpKind::kGet ? out.value : std::string{});
    } else if (out.status != KvResult::Status::kTimeout) {
      recorder_->complete(ticket, false);
    }
    // Timeout: the op stays pending — it may still apply later.
  }
  return out;
}

}  // namespace pdc::dist
