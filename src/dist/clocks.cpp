#include "dist/clocks.hpp"

#include <sstream>

namespace pdc::dist {

const char* to_string(Causality c) {
  switch (c) {
    case Causality::kBefore: return "before";
    case Causality::kAfter: return "after";
    case Causality::kConcurrent: return "concurrent";
    case Causality::kEqual: return "equal";
  }
  return "?";
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < clock_.size(); ++i) {
    if (i) os << ' ';
    os << clock_[i];
  }
  os << ']';
  return os.str();
}

Causality VectorClock::compare(const std::vector<std::uint64_t>& a,
                               const std::vector<std::uint64_t>& b) {
  PDC_CHECK(a.size() == b.size());
  bool a_le_b = true, b_le_a = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) a_le_b = false;
    if (b[i] > a[i]) b_le_a = false;
  }
  if (a_le_b && b_le_a) return Causality::kEqual;
  if (a_le_b) return Causality::kBefore;
  if (b_le_a) return Causality::kAfter;
  return Causality::kConcurrent;
}

}  // namespace pdc::dist
