// Two-phase commit over the message-passing runtime.
//
// The distributed-transactions unit shared by the AUC distributed-systems
// course and the database courses of Table I. Rank 0 coordinates; all other
// ranks participate. Failure injection covers the two classic cases: a
// participant voting abort (unanimity is required), and a coordinator
// crash after collecting votes (participants resolve by presumed-abort
// timeout — the standard termination protocol; classic 2PC would block).
#pragma once

#include <chrono>
#include <cstdint>

#include "mp/comm.hpp"

namespace pdc::dist {

enum class TxnDecision : std::uint8_t { kCommitted, kAborted };

const char* to_string(TxnDecision d);

struct TpcStats {
  TxnDecision decision = TxnDecision::kAborted;
  std::uint64_t messages_sent = 0;
  bool timed_out = false;  // participant resolved by presumed abort
};

/// Coordinator (call from rank 0). Collects votes from every other rank,
/// decides commit iff all voted commit, and distributes the decision —
/// unless `crash_before_decision` injects a failure after votes are in.
TpcStats run_2pc_coordinator(mp::Communicator& comm,
                             bool crash_before_decision = false);

/// Participant (call from ranks != 0). Votes `vote_commit`; waits up to
/// `decision_timeout` for the decision, then presumes abort.
TpcStats run_2pc_participant(mp::Communicator& comm, bool vote_commit,
                             std::chrono::milliseconds decision_timeout =
                                 std::chrono::milliseconds(200));

}  // namespace pdc::dist
