// Distributed mutual exclusion: Ricart–Agrawala and token ring.
//
// Two canonical designs with opposite cost profiles, both running over the
// message-passing runtime: Ricart–Agrawala pays 2(p-1) messages per entry
// but has no idle traffic; the token ring pays one token hop per entry
// opportunity regardless of demand but grants in ring order. The mutual-
// exclusion property is asserted in tests via a shared violation detector
// (ranks are threads, so a process-wide atomic can observe overlap).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dist/clocks.hpp"
#include "mp/comm.hpp"

namespace pdc::dist {

/// Ricart–Agrawala permission-based mutual exclusion.
///
/// Usage inside an SPMD program: construct one per rank, call
/// `enter()`/`leave()` around critical sections, and `finish()` exactly
/// once at the end — it keeps answering peers' requests until every rank
/// has finished, which replaces the "process lives forever" assumption of
/// the original algorithm.
class RicartAgrawala {
 public:
  explicit RicartAgrawala(mp::Communicator& comm);

  /// Blocks until the critical section is granted (answers peer requests
  /// while waiting).
  void enter();

  /// Releases the critical section: replies to all deferred requests.
  void leave();

  /// Terminates participation; blocks until all ranks called finish().
  void finish();

  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  static constexpr int kTagRequest = 1;
  static constexpr int kTagReply = 2;
  static constexpr int kTagDone = 3;

  struct RequestMsg {
    std::uint64_t timestamp;
    int rank;
  };

  /// Handles exactly one incoming message (blocking).
  void pump_one();

  /// True when (their request) has priority over mine.
  [[nodiscard]] bool theirs_wins(const RequestMsg& theirs) const;

  mp::Communicator& comm_;
  LamportClock clock_;
  bool requesting_ = false;
  std::uint64_t my_timestamp_ = 0;
  int replies_pending_ = 0;
  int done_received_ = 0;
  std::vector<int> deferred_;
  std::uint64_t messages_sent_ = 0;
};

/// Runs a token-ring mutual-exclusion experiment: every rank performs
/// `entries` critical sections (invoking `critical_section` each time),
/// with entry granted only while holding the circulating token. Returns
/// the number of token hops this rank performed.
std::uint64_t run_token_ring(mp::Communicator& comm, std::size_t entries,
                             const std::function<void()>& critical_section);

}  // namespace pdc::dist
