// Load balancing and placement: scheduling policies, consistent hashing,
// and process migration (AUC distributed-systems course topics: "load
// balancing, process migration").
//
// The policy comparison is a deterministic discrete-event simulation over
// task durations, so the classic shapes are exact: round-robin suffers on
// skewed workloads, least-loaded fixes assignment-time imbalance, work
// stealing additionally fixes imbalance discovered *after* assignment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace pdc::dist {

struct BalanceResult {
  double makespan = 0.0;               // finish time of the last worker
  std::vector<double> worker_busy;     // per-worker busy time
  std::uint64_t steals = 0;            // work-stealing only

  /// Mean busy time / makespan — 1.0 is a perfectly balanced schedule.
  [[nodiscard]] double utilization() const;
};

/// Tasks dealt round-robin at submission; no later correction.
BalanceResult simulate_round_robin(const std::vector<double>& durations,
                                   std::size_t workers);

/// Each task goes to the currently least-loaded worker (work sharing).
BalanceResult simulate_least_loaded(const std::vector<double>& durations,
                                    std::size_t workers);

/// Round-robin initial placement, but an idle worker steals the last
/// queued task from the most-loaded victim (work stealing).
BalanceResult simulate_work_stealing(const std::vector<double>& durations,
                                     std::size_t workers);

/// Deterministic skewed workload: `n` tasks, mostly short with a heavy
/// tail (Zipf-weighted durations), seeded.
std::vector<double> make_skewed_tasks(std::size_t n, std::uint64_t seed);

// ---------------------------------------------------------------------------

/// Consistent-hash ring with virtual nodes: the placement structure behind
/// distributed caches/stores; adding or removing a node moves only ~1/n of
/// the keys (asserted by tests).
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(std::size_t virtual_nodes = 64);

  void add_node(const std::string& node);
  void remove_node(const std::string& node);

  /// Owner of `key`; empty ring is a precondition violation.
  [[nodiscard]] const std::string& node_for(const std::string& key) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_; }

 private:
  std::size_t virtual_nodes_;
  std::size_t nodes_ = 0;
  std::map<std::uint64_t, std::string> ring_;  // hash point -> node
};

// ---------------------------------------------------------------------------

/// Process-migration simulation: hosts carry processes with fixed loads;
/// each rebalance round migrates the heaviest process from the most loaded
/// host to the least loaded one while the spread exceeds `threshold`.
struct MigrationResult {
  std::size_t migrations = 0;
  double initial_imbalance = 0.0;  // max load - min load before
  double final_imbalance = 0.0;    // after rebalancing
};

MigrationResult rebalance_by_migration(std::vector<std::vector<double>>& hosts,
                                       double threshold,
                                       std::size_t max_migrations = 1000);

}  // namespace pdc::dist
