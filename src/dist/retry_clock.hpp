// RetryClock: elapsed-time source for retry/timeout cadences in the
// distributed protocols.
//
// Under a testkit::SimScheduler run the wall clock is meaningless —
// threads execute one at a time and only parked deadlines advance the
// virtual clock — so elapsed time must come from testkit::sim_now();
// off-sim it is a plain Stopwatch. Shared by 2PC retransmission, Raft
// election/heartbeat timers, and the ReplicatedKV client retry loop.
#pragma once

#include "support/stopwatch.hpp"
#include "testkit/hooks.hpp"

namespace pdc::dist {

class RetryClock {
 public:
  RetryClock() { reset(); }

  void reset() {
    sim_ = testkit::detail::sim_thread_active();
    if (sim_) {
      start_ = testkit::sim_now();
    } else {
      watch_.reset();
    }
  }

  [[nodiscard]] double elapsed_millis() const {
    if (sim_) return (testkit::sim_now() - start_) * 1e3;
    return watch_.elapsed_millis();
  }

 private:
  bool sim_ = false;
  double start_ = 0.0;
  support::Stopwatch watch_;
};

}  // namespace pdc::dist
