#include "dist/causal.hpp"

#include "support/check.hpp"

namespace pdc::dist {

CausalOrderBuffer::CausalOrderBuffer(std::size_t processes, std::size_t self)
    : self_(self), seen_(processes, 0) {
  PDC_CHECK(self < processes);
}

std::vector<std::uint64_t> CausalOrderBuffer::stamp_send() {
  ++seen_[self_];  // own broadcasts are "delivered" locally at send time
  return seen_;
}

bool CausalOrderBuffer::deliverable(const CausalMessage& message) const {
  const auto sender = static_cast<std::size_t>(message.source);
  PDC_CHECK(message.stamp.size() == seen_.size());
  if (message.stamp[sender] != seen_[sender] + 1) return false;  // FIFO gap
  for (std::size_t k = 0; k < seen_.size(); ++k) {
    if (k == sender) continue;
    if (message.stamp[k] > seen_[k]) return false;  // causal past missing
  }
  return true;
}

void CausalOrderBuffer::mark_delivered(const CausalMessage& message) {
  seen_[static_cast<std::size_t>(message.source)] += 1;
}

std::vector<CausalMessage> CausalOrderBuffer::offer(CausalMessage message) {
  pending_.push_back(std::move(message));
  std::vector<CausalMessage> released;
  // Repeatedly sweep: one delivery can unblock others.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (deliverable(pending_[i])) {
        mark_delivered(pending_[i]);
        released.push_back(std::move(pending_[i]));
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
  }
  return released;
}

CausalBroadcast::CausalBroadcast(mp::Communicator& comm)
    : comm_(comm),
      buffer_(static_cast<std::size_t>(comm.size()),
              static_cast<std::size_t>(comm.rank())) {}

void CausalBroadcast::broadcast(std::int64_t payload) {
  const auto stamp = buffer_.stamp_send();
  // Wire format: payload followed by the stamp.
  std::vector<std::int64_t> wire;
  wire.push_back(payload);
  for (std::uint64_t v : stamp) wire.push_back(static_cast<std::int64_t>(v));
  for (int peer = 0; peer < comm_.size(); ++peer) {
    if (peer == comm_.rank()) continue;
    comm_.send_vector(wire, peer, kTagCausal);
  }
}

std::vector<CausalMessage> CausalBroadcast::poll() {
  std::vector<CausalMessage> delivered;
  while (auto info = comm_.iprobe(mp::kAnySource, kTagCausal)) {
    const auto wire = comm_.recv_vector<std::int64_t>(info->source, kTagCausal);
    PDC_CHECK(wire.size() == 1 + static_cast<std::size_t>(comm_.size()));
    CausalMessage message;
    message.source = info->source;
    message.payload = wire[0];
    message.stamp.assign(wire.begin() + 1, wire.end());
    auto released = buffer_.offer(std::move(message));
    delivered.insert(delivered.end(), released.begin(), released.end());
  }
  return delivered;
}

}  // namespace pdc::dist
