#include "dist/two_phase_commit.hpp"

#include <thread>

#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pdc::dist {

namespace {
constexpr int kTagPrepare = 40;
constexpr int kTagVote = 41;
constexpr int kTagDecision = 42;
}  // namespace

const char* to_string(TxnDecision d) {
  return d == TxnDecision::kCommitted ? "committed" : "aborted";
}

TpcStats run_2pc_coordinator(mp::Communicator& comm,
                             bool crash_before_decision) {
  PDC_CHECK_MSG(comm.rank() == 0, "coordinator must be rank 0");
  TpcStats stats;
  const int p = comm.size();

  // Phase 1: solicit votes.
  for (int peer = 1; peer < p; ++peer) {
    comm.send_value(char{1}, peer, kTagPrepare);
    ++stats.messages_sent;
  }
  bool all_commit = true;
  for (int peer = 1; peer < p; ++peer) {
    all_commit &= comm.recv_value<char>(peer, kTagVote) != 0;
  }

  if (crash_before_decision) {
    // The injected failure: votes collected, decision never sent. The
    // "recovered" coordinator must abort (it cannot know whether any
    // participant already presumed abort).
    stats.decision = TxnDecision::kAborted;
    return stats;
  }

  // Phase 2: distribute the decision.
  stats.decision = all_commit ? TxnDecision::kCommitted : TxnDecision::kAborted;
  const char wire = stats.decision == TxnDecision::kCommitted ? 1 : 0;
  for (int peer = 1; peer < p; ++peer) {
    comm.send_value(wire, peer, kTagDecision);
    ++stats.messages_sent;
  }
  return stats;
}

TpcStats run_2pc_participant(mp::Communicator& comm, bool vote_commit,
                             std::chrono::milliseconds decision_timeout) {
  PDC_CHECK_MSG(comm.rank() != 0, "participants are ranks 1..p-1");
  TpcStats stats;

  (void)comm.recv_value<char>(0, kTagPrepare);
  comm.send_value(char{vote_commit ? 1 : 0}, 0, kTagVote);
  ++stats.messages_sent;

  // Await the decision; presume abort on timeout (termination protocol).
  support::Stopwatch clock;
  for (;;) {
    if (auto info = comm.iprobe(0, kTagDecision)) {
      const char wire = comm.recv_value<char>(0, kTagDecision);
      stats.decision = wire != 0 ? TxnDecision::kCommitted : TxnDecision::kAborted;
      return stats;
    }
    if (clock.elapsed_millis() >= static_cast<double>(decision_timeout.count())) {
      stats.decision = TxnDecision::kAborted;
      stats.timed_out = true;
      return stats;
    }
    std::this_thread::yield();
  }
}

}  // namespace pdc::dist
