#include "dist/two_phase_commit.hpp"

#include <thread>
#include <vector>

#include "dist/retry_clock.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::dist {

namespace {
constexpr int kTagPrepare = 40;
constexpr int kTagVote = 41;
constexpr int kTagDecision = 42;
constexpr int kTagAck = 43;

// Retransmission cadence and bound. Retries make every protocol message
// survive a lossy fabric (testkit::FaultInjector); the bound keeps the
// coordinator's final ack-collection terminating even if a participant's
// ack is lost forever (two-generals: after kMaxRounds it presumes
// delivery).
constexpr double kRetryMillis = 2.0;
constexpr int kMaxRounds = 250;
}  // namespace

const char* to_string(TxnDecision d) {
  return d == TxnDecision::kCommitted ? "committed" : "aborted";
}

TpcStats run_2pc_coordinator(mp::Communicator& comm,
                             bool crash_before_decision) {
  PDC_CHECK_MSG(comm.rank() == 0, "coordinator must be rank 0");
  obs::set_trace_thread_name("2pc.coordinator", 0);
  obs::ScopedSpan txn("2pc.coordinator");
  TpcStats stats;
  const int p = comm.size();

  // Phase 1: solicit votes, retransmitting PREPARE to silent peers so a
  // dropped solicitation (or a dropped vote — participants re-vote until
  // they hear a decision) cannot wedge the protocol.
  std::vector<char> voted(static_cast<std::size_t>(p), 0);
  std::vector<char> votes(static_cast<std::size_t>(p), 0);
  int pending = p - 1;
  RetryClock retry;
  {
    obs::ScopedSpan phase("2pc.prepare");
    for (int peer = 1; peer < p; ++peer) {
      comm.send_value(char{1}, peer, kTagPrepare);
      ++stats.messages_sent;
      PDC_OBS_COUNT("pdc.2pc.prepare_sent");
    }
    while (pending > 0) {
      testkit::yield_point("2pc.coord.collect");
      for (int peer = 1; peer < p; ++peer) {
        if (voted[static_cast<std::size_t>(peer)]) continue;
        if (comm.iprobe(peer, kTagVote)) {
          votes[static_cast<std::size_t>(peer)] =
              comm.recv_value<char>(peer, kTagVote);
          voted[static_cast<std::size_t>(peer)] = 1;
          --pending;
        }
      }
      if (pending > 0 && retry.elapsed_millis() >= kRetryMillis) {
        for (int peer = 1; peer < p; ++peer) {
          if (voted[static_cast<std::size_t>(peer)]) continue;
          comm.send_value(char{1}, peer, kTagPrepare);
          ++stats.messages_sent;
          PDC_OBS_COUNT("pdc.2pc.prepare_sent");
          PDC_OBS_COUNT("pdc.2pc.retransmit");
        }
        retry.reset();
      }
      testkit::poll_pause("2pc.coord.collect");
    }
  }
  bool all_commit = true;
  for (int peer = 1; peer < p; ++peer) {
    all_commit &= votes[static_cast<std::size_t>(peer)] != 0;
  }

  if (crash_before_decision) {
    // The injected failure: votes collected, decision never sent. The
    // "recovered" coordinator must abort (it cannot know whether any
    // participant already presumed abort).
    stats.decision = TxnDecision::kAborted;
    obs::trace_instant("2pc.coordinator_crash");
    PDC_OBS_COUNT("pdc.2pc.abort");
    return stats;
  }

  // Phase 2: distribute the decision until every participant acknowledges
  // it (bounded rounds; see kMaxRounds above).
  stats.decision = all_commit ? TxnDecision::kCommitted : TxnDecision::kAborted;
  if (stats.decision == TxnDecision::kCommitted) {
    obs::trace_instant("2pc.decide_commit");
    PDC_OBS_COUNT("pdc.2pc.commit");
  } else {
    obs::trace_instant("2pc.decide_abort");
    PDC_OBS_COUNT("pdc.2pc.abort");
  }
  obs::ScopedSpan phase("2pc.decide");
  const char wire = stats.decision == TxnDecision::kCommitted ? 1 : 0;
  std::vector<char> acked(static_cast<std::size_t>(p), 0);
  pending = p - 1;
  for (int round = 0; pending > 0 && round < kMaxRounds; ++round) {
    testkit::yield_point("2pc.coord.decide");
    for (int peer = 1; peer < p; ++peer) {
      if (acked[static_cast<std::size_t>(peer)]) continue;
      comm.send_value(wire, peer, kTagDecision);
      ++stats.messages_sent;
      PDC_OBS_COUNT("pdc.2pc.decision_sent");
      if (round > 0) PDC_OBS_COUNT("pdc.2pc.retransmit");
    }
    retry.reset();
    while (pending > 0 && retry.elapsed_millis() < kRetryMillis) {
      for (int peer = 1; peer < p; ++peer) {
        if (acked[static_cast<std::size_t>(peer)]) continue;
        if (comm.iprobe(peer, kTagAck)) {
          (void)comm.recv_value<char>(peer, kTagAck);
          acked[static_cast<std::size_t>(peer)] = 1;
          --pending;
        }
      }
      testkit::poll_pause("2pc.coord.decide");
    }
  }
  return stats;
}

TpcStats run_2pc_participant(mp::Communicator& comm, bool vote_commit,
                             std::chrono::milliseconds decision_timeout) {
  PDC_CHECK_MSG(comm.rank() != 0, "participants are ranks 1..p-1");
  obs::set_trace_thread_name("2pc.participant",
                             static_cast<std::uint64_t>(comm.rank()));
  obs::ScopedSpan txn("2pc.participant",
                      static_cast<std::uint64_t>(comm.rank()));
  TpcStats stats;

  (void)comm.recv_value<char>(0, kTagPrepare);
  comm.send_value(static_cast<char>(vote_commit ? 1 : 0), 0, kTagVote);
  ++stats.messages_sent;
  PDC_OBS_COUNT("pdc.2pc.vote_sent");

  // Await the decision; re-vote on a retry cadence (our vote may have been
  // lost); presume abort on timeout (termination protocol).
  obs::ScopedSpan phase("2pc.await_decision");
  RetryClock clock;
  RetryClock retry;
  for (;;) {
    testkit::yield_point("2pc.part.await");
    if (auto info = comm.iprobe(0, kTagDecision)) {
      const char wire = comm.recv_value<char>(0, kTagDecision);
      stats.decision = wire != 0 ? TxnDecision::kCommitted : TxnDecision::kAborted;
      obs::trace_instant(stats.decision == TxnDecision::kCommitted
                             ? "2pc.learned_commit"
                             : "2pc.learned_abort");
      comm.send_value(char{1}, 0, kTagAck);
      ++stats.messages_sent;
      PDC_OBS_COUNT("pdc.2pc.ack_sent");
      // Linger briefly, re-acking retransmitted decisions: our ack may be
      // lost, and once we return nobody answers the coordinator.
      RetryClock quiet;
      while (quiet.elapsed_millis() < 5.0 * kRetryMillis) {
        if (comm.iprobe(0, kTagDecision)) {
          (void)comm.recv_value<char>(0, kTagDecision);
          comm.send_value(char{1}, 0, kTagAck);
          ++stats.messages_sent;
          PDC_OBS_COUNT("pdc.2pc.ack_sent");
          PDC_OBS_COUNT("pdc.2pc.retransmit");
          quiet.reset();
        }
        testkit::poll_pause("2pc.part.quiet");
      }
      return stats;
    }
    if (clock.elapsed_millis() >= static_cast<double>(decision_timeout.count())) {
      stats.decision = TxnDecision::kAborted;
      stats.timed_out = true;
      obs::trace_instant("2pc.presumed_abort");
      PDC_OBS_COUNT("pdc.2pc.timeout");
      PDC_OBS_COUNT("pdc.2pc.abort");
      return stats;
    }
    if (retry.elapsed_millis() >= kRetryMillis) {
      comm.send_value(static_cast<char>(vote_commit ? 1 : 0), 0, kTagVote);
      ++stats.messages_sent;
      PDC_OBS_COUNT("pdc.2pc.vote_sent");
      PDC_OBS_COUNT("pdc.2pc.retransmit");
      retry.reset();
    }
    testkit::poll_pause("2pc.part.await");
  }
}

}  // namespace pdc::dist
