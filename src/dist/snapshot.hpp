// Chandy–Lamport distributed snapshot over the message-passing runtime.
//
// The token-conservation experiment: ranks continually transfer tokens to
// random peers while one rank triggers a global snapshot. The algorithm
// records each process's local token count at its marker instant plus the
// tokens in flight on each channel; the invariant — recorded totals equal
// the initial total even though no instant of global quiescence ever
// existed — is the whole point, and tests assert it.
#pragma once

#include <cstdint>

#include "mp/comm.hpp"

namespace pdc::dist {

struct SnapshotResult {
  std::int64_t recorded_local = 0;      // my tokens at the marker instant
  std::int64_t recorded_in_flight = 0;  // tokens recorded on my inbound channels
  std::int64_t final_tokens = 0;        // my tokens when the run ended
  std::uint64_t markers_sent = 0;
};

/// Runs one token-passing workload with an embedded snapshot.
/// Every rank performs `sends` unit-token transfers to seeded-random peers;
/// the rank with `initiator` true triggers the snapshot mid-run. Channels
/// are the all-to-all pairs; marker rules are the classic ones (record on
/// first marker, channel that delivered it is empty, others record until
/// their marker arrives).
SnapshotResult run_token_snapshot(mp::Communicator& comm,
                                  std::int64_t initial_tokens,
                                  std::size_t sends, bool initiator,
                                  std::uint64_t seed);

}  // namespace pdc::dist
