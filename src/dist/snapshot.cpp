#include "dist/snapshot.hpp"

#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::dist {

namespace {
constexpr int kTagTraffic = 50;  // one tag for tokens AND markers: a channel
                                 // is FIFO across both, as the algorithm
                                 // requires
constexpr int kTagDone = 51;

struct TrafficMsg {
  std::uint8_t is_marker;
  std::int64_t amount;
};
}  // namespace

SnapshotResult run_token_snapshot(mp::Communicator& comm,
                                  std::int64_t initial_tokens,
                                  std::size_t sends, bool initiator,
                                  std::uint64_t seed) {
  PDC_CHECK(initial_tokens >= 0);
  const int p = comm.size();
  const int me = comm.rank();
  support::Rng rng(seed + static_cast<std::uint64_t>(me) * 7919);
  obs::set_trace_thread_name("snapshot.rank", static_cast<std::uint64_t>(me));
  obs::ScopedSpan span("snapshot.run", static_cast<std::uint64_t>(me));

  SnapshotResult result;
  std::int64_t tokens = initial_tokens;
  bool recorded = false;
  // recording[c]: inbound channel from rank c is being recorded.
  std::vector<bool> recording(static_cast<std::size_t>(p), false);
  int open_channels = 0;
  std::size_t sends_done = 0;
  bool done_sent = false;
  int done_received = 0;

  auto record_state = [&](int skip_channel) {
    recorded = true;
    result.recorded_local = tokens;
    obs::trace_instant("snapshot.record_state",
                       static_cast<std::uint64_t>(tokens));
    for (int c = 0; c < p; ++c) {
      if (c == me || c == skip_channel) continue;
      recording[static_cast<std::size_t>(c)] = true;
      ++open_channels;
    }
    const TrafficMsg marker{1, 0};
    for (int peer = 0; peer < p; ++peer) {
      if (peer == me) continue;
      comm.send_value(marker, peer, kTagTraffic);
      ++result.markers_sent;
      PDC_OBS_COUNT("pdc.snapshot.markers");
    }
    if (open_channels == 0) obs::trace_instant("snapshot.complete");
  };

  auto snapshot_complete = [&] { return recorded && open_channels == 0; };

  auto handle_pending = [&] {
    bool handled = false;
    while (auto info = comm.iprobe(mp::kAnySource, mp::kAnyTag)) {
      handled = true;
      if (info->tag == kTagDone) {
        (void)comm.recv_value<char>(info->source, kTagDone);
        ++done_received;
        continue;
      }
      const auto msg = comm.recv_value<TrafficMsg>(info->source, kTagTraffic);
      if (msg.is_marker) {
        if (!recorded) {
          // First marker: record state; the delivering channel is empty.
          record_state(info->source);
        } else if (recording[static_cast<std::size_t>(info->source)]) {
          recording[static_cast<std::size_t>(info->source)] = false;
          --open_channels;
          if (recorded && open_channels == 0) {
            obs::trace_instant("snapshot.complete");
          }
        }
      } else {
        tokens += msg.amount;
        if (recorded && recording[static_cast<std::size_t>(info->source)]) {
          result.recorded_in_flight += msg.amount;
        }
      }
    }
    return handled;
  };

  while (sends_done < sends || !snapshot_complete() ||
         done_received < p - 1 || !done_sent) {
    const bool handled = handle_pending();

    if (p > 1 && sends_done < sends) {
      if (initiator && !recorded && sends_done >= sends / 2) {
        record_state(/*skip_channel=*/-1);
      }
      if (tokens > 0) {
        int peer = static_cast<int>(rng.index(static_cast<std::size_t>(p)));
        if (peer == me) peer = (peer + 1) % p;
        --tokens;
        comm.send_value(TrafficMsg{0, 1}, peer, kTagTraffic);
      }
      ++sends_done;  // a send attempt with no tokens is a skipped turn
      continue;
    }
    if (p == 1) {
      // Degenerate single-process world: snapshot is just the local state.
      if (!recorded) record_state(-1);
      sends_done = sends;
    }

    if (sends_done >= sends && snapshot_complete() && !done_sent) {
      for (int peer = 0; peer < p; ++peer) {
        if (peer == me) continue;
        comm.send_value(char{1}, peer, kTagDone);
      }
      done_sent = true;
      continue;
    }
    if (!handled) std::this_thread::yield();
  }

  result.final_tokens = tokens;
  PDC_OBS_COUNT("pdc.snapshot.recorded_in_flight",
                static_cast<std::uint64_t>(result.recorded_in_flight));
  return result;
}

}  // namespace pdc::dist
