// Logical time: Lamport clocks, vector clocks, happened-before.
//
// The AUC distributed-computing course covers "modeling and specification
// to consistency"; causality tracking is its first tool. VectorClock
// implements the full happened-before partial order; LamportClock the
// scalar compression of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace pdc::dist {

/// Scalar logical clock (Lamport 1978). Rules: tick before every local
/// event; on receive, clock = max(local, received) + 1.
class LamportClock {
 public:
  /// Advances for a local event (including sends); returns the new time.
  std::uint64_t tick() { return ++time_; }

  /// Folds in a received timestamp; returns the new local time.
  std::uint64_t merge(std::uint64_t received) {
    time_ = std::max(time_, received) + 1;
    return time_;
  }

  [[nodiscard]] std::uint64_t now() const { return time_; }

 private:
  std::uint64_t time_ = 0;
};

/// Outcome of comparing two vector timestamps.
enum class Causality { kBefore, kAfter, kConcurrent, kEqual };

const char* to_string(Causality c);

/// Vector clock for `processes` participants.
class VectorClock {
 public:
  VectorClock(std::size_t processes, std::size_t self)
      : clock_(processes, 0), self_(self) {
    PDC_CHECK(self < processes);
  }

  /// Advances own component for a local event (including sends).
  void tick() { ++clock_[self_]; }

  /// Component-wise max with a received timestamp, then tick (receive rule).
  void merge(const std::vector<std::uint64_t>& received) {
    PDC_CHECK(received.size() == clock_.size());
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      clock_[i] = std::max(clock_[i], received[i]);
    }
    tick();
  }

  [[nodiscard]] const std::vector<std::uint64_t>& now() const { return clock_; }
  [[nodiscard]] std::size_t self() const { return self_; }

  [[nodiscard]] std::string to_string() const;

  /// Happened-before comparison of two timestamps.
  static Causality compare(const std::vector<std::uint64_t>& a,
                           const std::vector<std::uint64_t>& b);

 private:
  std::vector<std::uint64_t> clock_;
  std::size_t self_;
};

/// a happened-before b (strictly).
inline bool happened_before(const std::vector<std::uint64_t>& a,
                            const std::vector<std::uint64_t>& b) {
  return VectorClock::compare(a, b) == Causality::kBefore;
}

/// Neither ordered: concurrent events.
inline bool concurrent(const std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) {
  return VectorClock::compare(a, b) == Causality::kConcurrent;
}

}  // namespace pdc::dist
