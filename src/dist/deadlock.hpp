// Chandy–Misra–Haas distributed deadlock detection (AND model).
//
// Table I assigns deadlocks to both the OS and database courses; this is
// the edge-chasing algorithm for detecting them across sites. Processes
// are modelled with their wait-for dependencies; probe messages
// (initiator, from, to) chase the edges, and a probe returning to its
// initiator proves a cycle. The simulator is message-driven (an explicit
// FIFO of probes) so message counts are exact and runs are deterministic.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "support/check.hpp"

namespace pdc::dist {

class CmhDeadlockDetector {
 public:
  explicit CmhDeadlockDetector(std::size_t processes);

  /// Declares that `waiter` is blocked on `holder` (AND model: blocked on
  /// every out-edge).
  void add_wait(std::size_t waiter, std::size_t holder);

  /// Removes a dependency (resource granted/released).
  void remove_wait(std::size_t waiter, std::size_t holder);

  /// Runs the probe protocol from `initiator`; true iff `initiator` is part
  /// of a deadlock cycle.
  bool detect(std::size_t initiator);

  /// Probe messages sent by the most recent detect() run.
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

  /// Convenience: any process deadlocked?
  bool detect_any();

 private:
  std::vector<std::set<std::size_t>> waits_for_;
  std::uint64_t probes_sent_ = 0;
};

}  // namespace pdc::dist
