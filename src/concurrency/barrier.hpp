// Thread barriers: the blocking CyclicBarrier used by the runtime, and a
// SenseReversingBarrier that demonstrates the classic spin-based design
// covered in parallel-programming courses (LAU case study, part 2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

/// Reusable barrier for a fixed party count; optionally runs a completion
/// action exactly once per generation (in the last-arriving thread).
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties,
                         std::function<void()> on_completion = {})
      : parties_(parties), waiting_(0), generation_(0),
        on_completion_(std::move(on_completion)) {
    PDC_CHECK(parties > 0);
  }

  CyclicBarrier(const CyclicBarrier&) = delete;
  CyclicBarrier& operator=(const CyclicBarrier&) = delete;

  /// Blocks until `parties` threads have arrived; returns the generation
  /// index that completed (useful for phase-numbered algorithms).
  std::size_t arrive_and_wait() {
    testkit::yield_point("barrier.arrive");
    std::unique_lock lock(mutex_);
    const std::size_t my_generation = generation_;
    if (++waiting_ == parties_) {
      if (on_completion_) on_completion_();
      waiting_ = 0;
      ++generation_;
      testkit::notify_all(released_);
      return my_generation;
    }
    testkit::wait(lock, released_,
                  [&] { return generation_ != my_generation; },
                  "barrier.wait");
    return my_generation;
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  std::size_t waiting_;
  std::size_t generation_;
  std::function<void()> on_completion_;
  std::mutex mutex_;
  std::condition_variable released_;
};

/// Spin barrier with per-thread sense reversal. All waiting is busy-waiting
/// on a single shared flag — cheap for short phases on dedicated cores, and
/// the standard teaching contrast to the blocking barrier above.
class SenseReversingBarrier {
 public:
  explicit SenseReversingBarrier(std::size_t parties)
      : parties_(parties), remaining_(parties), sense_(false) {
    PDC_CHECK(parties > 0);
  }

  SenseReversingBarrier(const SenseReversingBarrier&) = delete;
  SenseReversingBarrier& operator=(const SenseReversingBarrier&) = delete;

  /// Each participating thread must own one LocalSense for the barrier's
  /// lifetime and pass the same object to every arrive_and_wait call.
  struct LocalSense {
    bool sense = true;
  };

  void arrive_and_wait(LocalSense& local) {
    testkit::yield_point("sense_barrier.arrive");
    const bool my_sense = local.sense;
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // release the phase
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        testkit::spin_yield("sense_barrier.spin");
        std::this_thread::yield();  // single-core friendliness; a dedicated
                                    // core would pure-spin here
      }
    }
    local.sense = !my_sense;
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_;
};

/// One-shot countdown latch (thread-count independent).
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count) : count_(count) {}

  void count_down(std::size_t n = 1) {
    testkit::yield_point("latch.count_down");
    std::unique_lock lock(mutex_);
    PDC_CHECK_MSG(n <= count_, "latch counted below zero");
    count_ -= n;
    if (count_ == 0) {
      testkit::notify_all(zero_);
    }
  }

  void wait() {
    testkit::yield_point("latch.wait");
    std::unique_lock lock(mutex_);
    testkit::wait(lock, zero_, [&] { return count_ == 0; }, "latch.wait");
  }

  [[nodiscard]] bool try_wait() const {
    std::scoped_lock lock(mutex_);
    return count_ == 0;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable zero_;
  std::size_t count_;
};

}  // namespace pdc::concurrency
