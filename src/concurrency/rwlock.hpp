// Reader-writer lock with writer preference, built from one mutex and two
// condition variables — the construction OS courses derive from first
// principles (readers share, writers exclude, waiting writers block new
// readers to avoid writer starvation).
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/check.hpp"

namespace pdc::concurrency {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() {
    std::unique_lock lock(mutex_);
    readers_turn_.wait(lock, [&] { return !writer_active_ && writers_waiting_ == 0; });
    ++readers_active_;
  }

  void unlock_shared() {
    std::unique_lock lock(mutex_);
    PDC_CHECK(readers_active_ > 0);
    if (--readers_active_ == 0) {
      lock.unlock();
      writers_turn_.notify_one();
    }
  }

  void lock() {
    std::unique_lock lock(mutex_);
    ++writers_waiting_;
    writers_turn_.wait(lock, [&] { return !writer_active_ && readers_active_ == 0; });
    --writers_waiting_;
    writer_active_ = true;
  }

  void unlock() {
    std::unique_lock lock(mutex_);
    PDC_CHECK(writer_active_);
    writer_active_ = false;
    const bool writers_pending = writers_waiting_ > 0;
    lock.unlock();
    if (writers_pending) {
      writers_turn_.notify_one();
    } else {
      readers_turn_.notify_all();
    }
  }

  bool try_lock() {
    std::scoped_lock lock(mutex_);
    if (writer_active_ || readers_active_ > 0) return false;
    writer_active_ = true;
    return true;
  }

  bool try_lock_shared() {
    std::scoped_lock lock(mutex_);
    if (writer_active_ || writers_waiting_ > 0) return false;
    ++readers_active_;
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable readers_turn_;
  std::condition_variable writers_turn_;
  std::size_t readers_active_ = 0;
  std::size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// RAII shared (read) guard for RwLock.
class SharedGuard {
 public:
  explicit SharedGuard(RwLock& lock) : lock_(lock) { lock_.lock_shared(); }
  ~SharedGuard() { lock_.unlock_shared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  RwLock& lock_;
};

}  // namespace pdc::concurrency
