// Reader-writer lock with writer preference, built from one mutex and two
// condition variables — the construction OS courses derive from first
// principles (readers share, writers exclude, waiting writers block new
// readers to avoid writer starvation).
//
// Waits and notifies route through pdc::testkit hooks (no-ops outside a
// SimScheduler run); notifications are issued under the mutex — see
// bounded_queue.hpp for why unlock-then-notify is unsafe.
#pragma once

#include <condition_variable>
#include <mutex>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

class RwLock {
 public:
  RwLock() = default;
  RwLock(const RwLock&) = delete;
  RwLock& operator=(const RwLock&) = delete;

  void lock_shared() {
    testkit::yield_point("rw.lock_shared");
    PDC_OBS_COUNT("pdc.rwlock.read.acquire");
    std::unique_lock lock(mutex_);
    const bool contended = writer_active_ || writers_waiting_ != 0;
    std::uint64_t wait_start = 0;
    if (contended) {
      PDC_OBS_COUNT("pdc.rwlock.read.contended");
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
    }
    testkit::wait(lock, readers_turn_,
                  [&] { return !writer_active_ && writers_waiting_ == 0; },
                  "rw.lock_shared.wait");
    if (contended) {
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("rwlock.read").record(obs::now_us() - wait_start);
      }
    }
    ++readers_active_;
  }

  void unlock_shared() {
    testkit::yield_point("rw.unlock_shared");
    std::unique_lock lock(mutex_);
    PDC_CHECK(readers_active_ > 0);
    if (--readers_active_ == 0) {
      testkit::notify_one(writers_turn_);
    }
  }

  void lock() {
    testkit::yield_point("rw.lock");
    PDC_OBS_COUNT("pdc.rwlock.write.acquire");
    std::unique_lock lock(mutex_);
    const bool contended = writer_active_ || readers_active_ != 0;
    std::uint64_t wait_start = 0;
    if (contended) {
      PDC_OBS_COUNT("pdc.rwlock.write.contended");
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
    }
    ++writers_waiting_;
    testkit::wait(lock, writers_turn_,
                  [&] { return !writer_active_ && readers_active_ == 0; },
                  "rw.lock.wait");
    --writers_waiting_;
    if (contended) {
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("rwlock.write").record(obs::now_us() - wait_start);
      }
    }
    writer_active_ = true;
  }

  void unlock() {
    testkit::yield_point("rw.unlock");
    std::unique_lock lock(mutex_);
    PDC_CHECK(writer_active_);
    writer_active_ = false;
    if (writers_waiting_ > 0) {
      testkit::notify_one(writers_turn_);
    } else {
      testkit::notify_all(readers_turn_);
    }
  }

  bool try_lock() {
    testkit::yield_point("rw.try_lock");
    std::scoped_lock lock(mutex_);
    if (writer_active_ || readers_active_ > 0) return false;
    writer_active_ = true;
    return true;
  }

  bool try_lock_shared() {
    testkit::yield_point("rw.try_lock_shared");
    std::scoped_lock lock(mutex_);
    if (writer_active_ || writers_waiting_ > 0) return false;
    ++readers_active_;
    return true;
  }

 private:
  std::mutex mutex_;
  std::condition_variable readers_turn_;
  std::condition_variable writers_turn_;
  std::size_t readers_active_ = 0;
  std::size_t writers_waiting_ = 0;
  bool writer_active_ = false;
};

/// RAII shared (read) guard for RwLock.
class SharedGuard {
 public:
  explicit SharedGuard(RwLock& lock) : lock_(lock) { lock_.lock_shared(); }
  ~SharedGuard() { lock_.unlock_shared(); }
  SharedGuard(const SharedGuard&) = delete;
  SharedGuard& operator=(const SharedGuard&) = delete;

 private:
  RwLock& lock_;
};

}  // namespace pdc::concurrency
