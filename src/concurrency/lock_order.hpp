// Runtime lock-order (deadlock-potential) checker.
//
// CC2020's PDC competencies call out deadlocks explicitly, and Core
// Guidelines CP.9 says to validate concurrent code with tools. OrderedMutex
// records the global "acquired-while-holding" graph; a cycle in that graph
// means two threads can deadlock even if this run happened not to. The
// checker flags the *potential* at the moment the inverted acquisition is
// attempted, which is what lock-order analyzers (e.g. pthread lockdep)
// teach.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pdc::concurrency {

class LockOrderRegistry;

/// A mutex that reports its acquisitions to a LockOrderRegistry.
class OrderedMutex {
 public:
  /// `name` identifies the mutex in violation reports.
  OrderedMutex(LockOrderRegistry& registry, std::string name);
  ~OrderedMutex();

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  /// Acquires; if this acquisition creates a cycle in the global order
  /// graph the violation is recorded in the registry (the lock is still
  /// taken so the program proceeds).
  void lock();
  void unlock();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }

 private:
  LockOrderRegistry& registry_;
  std::string name_;
  std::uint32_t id_;
  std::mutex mutex_;
};

/// Shared state for a family of OrderedMutex objects.
class LockOrderRegistry {
 public:
  LockOrderRegistry() = default;
  LockOrderRegistry(const LockOrderRegistry&) = delete;
  LockOrderRegistry& operator=(const LockOrderRegistry&) = delete;

  /// Human-readable reports like "lock-order inversion: B acquired while
  /// holding A, but A->B order was already established".
  [[nodiscard]] std::vector<std::string> violations() const;

  [[nodiscard]] bool clean() const { return violations().empty(); }

 private:
  friend class OrderedMutex;

  std::uint32_t register_mutex(const std::string& name);
  void unregister_mutex(std::uint32_t id);
  void on_acquire(std::uint32_t id);
  void on_release(std::uint32_t id);

  /// True if `to` is reachable from `from` in the established-order graph.
  bool reachable_locked(std::uint32_t from, std::uint32_t to) const;

  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  // edges_[a] lists b where order a-then-b was observed.
  std::vector<std::vector<std::uint32_t>> edges_;
  std::vector<std::string> violations_;
};

/// RAII guard for OrderedMutex.
class OrderedGuard {
 public:
  explicit OrderedGuard(OrderedMutex& m) : m_(m) { m_.lock(); }
  ~OrderedGuard() { m_.unlock(); }
  OrderedGuard(const OrderedGuard&) = delete;
  OrderedGuard& operator=(const OrderedGuard&) = delete;

 private:
  OrderedMutex& m_;
};

}  // namespace pdc::concurrency
