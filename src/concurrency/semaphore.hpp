// Counting and binary semaphores.
//
// SE2014 lists "concurrency primitives (e.g., semaphores and monitors)" as
// an essential, application-level topic (paper, Table III). These are
// condition-variable based so the implementation itself demonstrates the
// guarded-wait idiom (Core Guidelines CP.42: don't wait without a
// condition).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/check.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

/// Classic counting semaphore with optional bound.
///
/// `max_count == 0` means unbounded (release never blocks the invariant).
/// With a bound, release() checks the ceiling — catching the common student
/// bug of releasing more permits than exist.
class CountingSemaphore {
 public:
  explicit CountingSemaphore(std::size_t initial, std::size_t max_count = 0)
      : count_(initial), max_(max_count) {
    if (max_ != 0) PDC_CHECK_MSG(initial <= max_, "initial exceeds max_count");
  }

  CountingSemaphore(const CountingSemaphore&) = delete;
  CountingSemaphore& operator=(const CountingSemaphore&) = delete;

  /// P / wait / down: blocks until a permit is available.
  void acquire() {
    testkit::yield_point("sem.acquire");
    std::unique_lock lock(mutex_);
    testkit::wait(lock, available_, [&] { return count_ > 0; },
                  "sem.acquire.wait");
    --count_;
  }

  /// Non-blocking acquire.
  bool try_acquire() {
    testkit::yield_point("sem.try_acquire");
    std::scoped_lock lock(mutex_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  /// Timed acquire; false on timeout.
  template <typename Rep, typename Period>
  bool try_acquire_for(std::chrono::duration<Rep, Period> timeout) {
    testkit::yield_point("sem.try_acquire_for");
    std::unique_lock lock(mutex_);
    if (!testkit::wait_for(lock, available_, timeout,
                           [&] { return count_ > 0; },
                           "sem.try_acquire_for.wait")) {
      return false;
    }
    --count_;
    return true;
  }

  /// V / signal / up: returns `n` permits.
  void release(std::size_t n = 1) {
    testkit::yield_point("sem.release");
    std::scoped_lock lock(mutex_);
    if (max_ != 0) {
      PDC_CHECK_MSG(count_ + n <= max_, "semaphore released past max_count");
    }
    count_ += n;
    if (n == 1) {
      testkit::notify_one(available_);
    } else {
      testkit::notify_all(available_);
    }
  }

  /// Instantaneous permit count (diagnostic only; racy by nature).
  std::size_t permits() const {
    std::scoped_lock lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::size_t count_;
  const std::size_t max_;
};

/// Binary semaphore == CountingSemaphore bounded at one permit.
class BinarySemaphore : public CountingSemaphore {
 public:
  explicit BinarySemaphore(bool initially_available)
      : CountingSemaphore(initially_available ? 1 : 0, 1) {}
};

}  // namespace pdc::concurrency
