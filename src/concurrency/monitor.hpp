// Monitor<T>: data bundled with its mutex and condition variable.
//
// Implements Core Guidelines CP.50 ("define a mutex together with the data
// it guards; use synchronized_value<T> where possible") and serves as the
// library's monitor exemplar (SE2014 "concurrency primitives: semaphores
// and monitors"). All access happens inside `with`/`wait`, so the guarded
// state can never be touched without holding the lock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#include "obs/obs.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

template <typename T>
class Monitor {
 public:
  Monitor() = default;
  explicit Monitor(T initial) : data_(std::move(initial)) {}

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Runs `fn(T&)` with the lock held; returns fn's result.
  /// Signals the condition afterwards since `fn` may have changed state
  /// some waiter is blocked on.
  template <typename Fn>
  auto with(Fn&& fn) -> decltype(fn(std::declval<T&>())) {
    testkit::yield_point("monitor.with");
    PDC_OBS_COUNT("pdc.monitor.with");
    std::unique_lock lock(mutex_);
    if constexpr (std::is_void_v<decltype(fn(data_))>) {
      std::forward<Fn>(fn)(data_);
      testkit::notify_all(changed_);
    } else {
      auto result = std::forward<Fn>(fn)(data_);
      testkit::notify_all(changed_);
      return result;
    }
  }

  /// Read-only access without notification.
  template <typename Fn>
  auto read(Fn&& fn) const -> decltype(fn(std::declval<const T&>())) {
    std::scoped_lock lock(mutex_);
    return std::forward<Fn>(fn)(data_);
  }

  /// Blocks until `pred(const T&)` holds, then runs `fn(T&)` under the lock.
  template <typename Pred, typename Fn>
  auto wait(Pred&& pred, Fn&& fn) -> decltype(fn(std::declval<T&>())) {
    testkit::yield_point("monitor.wait");
    PDC_OBS_COUNT("pdc.monitor.wait");
    std::unique_lock lock(mutex_);
    // Contention accounting only when the wait actually blocks (predicate
    // initially false): the satisfied-on-entry path stays store-free.
    const bool blocked = !pred(std::as_const(data_));
    std::uint64_t wait_start = 0;
    if (blocked) {
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
    }
    testkit::wait(lock, changed_,
                  [&] { return pred(std::as_const(data_)); }, "monitor.wait");
    if (blocked) {
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("monitor.wait").record(obs::now_us() - wait_start);
      }
    }
    if constexpr (std::is_void_v<decltype(fn(data_))>) {
      std::forward<Fn>(fn)(data_);
      testkit::notify_all(changed_);
    } else {
      auto result = std::forward<Fn>(fn)(data_);
      testkit::notify_all(changed_);
      return result;
    }
  }

  /// Timed variant of `wait`; returns false on timeout (fn not run).
  template <typename Rep, typename Period, typename Pred, typename Fn>
  bool wait_for(std::chrono::duration<Rep, Period> timeout, Pred&& pred,
                Fn&& fn) {
    testkit::yield_point("monitor.wait_for");
    std::unique_lock lock(mutex_);
    if (!testkit::wait_for(lock, changed_, timeout,
                           [&] { return pred(std::as_const(data_)); },
                           "monitor.wait_for")) {
      return false;
    }
    std::forward<Fn>(fn)(data_);
    testkit::notify_all(changed_);
    return true;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable changed_;
  T data_{};
};

}  // namespace pdc::concurrency
