// BoundedQueue<T>: the "properly synchronized queue" of CC2020's PDC
// competency list — a multi-producer multi-consumer blocking bounded
// buffer with orderly shutdown.
//
// All waits and notifications route through pdc::testkit hooks, so the
// queue can be driven under a deterministic SimScheduler (no-ops in
// production builds). Notifications are issued while the mutex is still
// held: the earlier unlock-then-notify variant raced with waiter-side
// destruction — a consumer could wake on the state change, observe the
// queue drained, and destroy it before the producer's notify touched the
// (now freed) condition variable. See tests/testkit_test for the
// schedule-explored regression tests.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/status.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PDC_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns kClosed (item dropped) after close().
  support::Status push(T item) {
    testkit::yield_point("bq.push");
    std::unique_lock lock(mutex_);
    // The wait is entered only when the producer would actually block, so
    // the depth gauge and block-time histogram (pdc.queue.*) measure real
    // backpressure, not the uncontended fast path.
    if (items_.size() >= capacity_ && !closed_) {
      PDC_OBS_COUNT("pdc.queue.push_blocked");
      std::uint64_t wait_start = 0;
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      testkit::wait(lock, not_full_,
                    [&] { return items_.size() < capacity_ || closed_; },
                    "bq.push.wait");
      if constexpr (obs::kObsEnabled) {
        const std::uint64_t waited = obs::now_us() - wait_start;
        PDC_OBS_HIST("pdc.queue.block_us", waited);
        PDC_CONTENTION_SITE("queue.push").record(waited);
      }
    }
    if (closed_) return {support::StatusCode::kClosed, "queue closed"};
    items_.push_back(std::move(item));
    PDC_OBS_GAUGE_ADD("pdc.queue.depth", 1);
    testkit::notify_one(not_empty_);
    return support::Status::ok();
  }

  /// Non-blocking push; kUnavailable when full.
  support::Status try_push(T item) {
    testkit::yield_point("bq.try_push");
    std::scoped_lock lock(mutex_);
    if (closed_) return {support::StatusCode::kClosed, "queue closed"};
    if (items_.size() >= capacity_)
      return {support::StatusCode::kUnavailable, "queue full"};
    items_.push_back(std::move(item));
    PDC_OBS_GAUGE_ADD("pdc.queue.depth", 1);
    testkit::notify_one(not_empty_);
    return support::Status::ok();
  }

  /// Blocks while empty. Returns kClosed only when the queue is closed AND
  /// drained, so no pushed item is ever lost.
  support::Result<T> pop() {
    testkit::yield_point("bq.pop");
    std::unique_lock lock(mutex_);
    if (items_.empty() && !closed_) {
      PDC_OBS_COUNT("pdc.queue.pop_blocked");
      std::uint64_t wait_start = 0;
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      testkit::wait(lock, not_empty_,
                    [&] { return !items_.empty() || closed_; }, "bq.pop.wait");
      if constexpr (obs::kObsEnabled) {
        const std::uint64_t waited = obs::now_us() - wait_start;
        PDC_OBS_HIST("pdc.queue.block_us", waited);
        PDC_CONTENTION_SITE("queue.pop").record(waited);
      }
    }
    if (items_.empty()) {
      return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PDC_OBS_GAUGE_SUB("pdc.queue.depth", 1);
    testkit::notify_one(not_full_);
    return item;
  }

  /// Non-blocking pop.
  support::Result<T> try_pop() {
    testkit::yield_point("bq.try_pop");
    std::scoped_lock lock(mutex_);
    if (items_.empty()) {
      if (closed_)
        return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
      return support::Status{support::StatusCode::kUnavailable, "queue empty"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PDC_OBS_GAUGE_SUB("pdc.queue.depth", 1);
    testkit::notify_one(not_full_);
    return item;
  }

  /// Timed pop; kTimeout if nothing arrives in time.
  template <typename Rep, typename Period>
  support::Result<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    testkit::yield_point("bq.pop_for");
    std::unique_lock lock(mutex_);
    if (!testkit::wait_for(lock, not_empty_, timeout,
                           [&] { return !items_.empty() || closed_; },
                           "bq.pop_for.wait")) {
      return support::Status{support::StatusCode::kTimeout, "pop timed out"};
    }
    if (items_.empty()) {
      return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    PDC_OBS_GAUGE_SUB("pdc.queue.depth", 1);
    testkit::notify_one(not_full_);
    return item;
  }

  /// Wakes all blocked producers/consumers; producers fail immediately,
  /// consumers drain the remaining items then observe kClosed.
  void close() {
    testkit::yield_point("bq.close");
    std::scoped_lock lock(mutex_);
    closed_ = true;
    testkit::notify_all(not_empty_);
    testkit::notify_all(not_full_);
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pdc::concurrency
