// BoundedQueue<T>: the "properly synchronized queue" of CC2020's PDC
// competency list — a multi-producer multi-consumer blocking bounded
// buffer with orderly shutdown.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/check.hpp"
#include "support/status.hpp"

namespace pdc::concurrency {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PDC_CHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns kClosed (item dropped) after close().
  support::Status push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return {support::StatusCode::kClosed, "queue closed"};
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return support::Status::ok();
  }

  /// Non-blocking push; kUnavailable when full.
  support::Status try_push(T item) {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return {support::StatusCode::kClosed, "queue closed"};
      if (items_.size() >= capacity_)
        return {support::StatusCode::kUnavailable, "queue full"};
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return support::Status::ok();
  }

  /// Blocks while empty. Returns kClosed only when the queue is closed AND
  /// drained, so no pushed item is ever lost.
  support::Result<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  support::Result<T> try_pop() {
    std::unique_lock lock(mutex_);
    if (items_.empty()) {
      if (closed_)
        return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
      return support::Status{support::StatusCode::kUnavailable, "queue empty"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed pop; kTimeout if nothing arrives in time.
  template <typename Rep, typename Period>
  support::Result<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; })) {
      return support::Status{support::StatusCode::kTimeout, "pop timed out"};
    }
    if (items_.empty()) {
      return support::Status{support::StatusCode::kClosed, "queue closed and drained"};
    }
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Wakes all blocked producers/consumers; producers fail immediately,
  /// consumers drain the remaining items then observe kClosed.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pdc::concurrency
