// Backoff: the spin → yield → park ladder for lock-free wait loops.
//
// A thread that finds no work should not go straight to a kernel park
// (wakeup latency) nor spin forever (burns a core, catastrophic when the
// machine is oversubscribed). The ladder escalates:
//
//   phase 1  spin   — `cpu_relax()` (PAUSE/YIELD) a bounded number of
//                     times; cheapest, keeps the pipeline polite to the
//                     sibling hyperthread;
//   phase 2  yield  — `std::this_thread::yield()`, giving the OS scheduler
//                     a chance to run whoever owns the work;
//   phase 3  park   — `park_ready()` turns true; the caller takes its slow
//                     path (condition-variable wait with a timeout).
//
// Backoff itself never blocks — parking needs a queue-specific predicate
// and a testkit-instrumented wait, so it stays in the caller (see
// parallel::WorkStealingPool and docs/scheduler.md for the full ladder).
#pragma once

#include <cstdint>
#include <thread>

namespace pdc::concurrency {

/// Architecture-appropriate spin-loop hint; no-op where unknown.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

class Backoff {
 public:
  /// `spin_limit` steps of cpu_relax, then `yield_limit` steps of OS
  /// yield, then park_ready(). Defaults tuned for short scheduler gaps.
  explicit Backoff(std::uint32_t spin_limit = 32,
                   std::uint32_t yield_limit = 8) noexcept
      : spin_limit_(spin_limit), yield_limit_(yield_limit) {}

  /// One rung of the ladder. Call after each failed attempt.
  void step() noexcept {
    if (steps_ < spin_limit_) {
      cpu_relax();
    } else if (steps_ < spin_limit_ + yield_limit_) {
      std::this_thread::yield();
    }
    if (steps_ < spin_limit_ + yield_limit_) ++steps_;
  }

  /// True once both spin and yield phases are exhausted; the caller should
  /// park (and reset() after waking).
  [[nodiscard]] bool park_ready() const noexcept {
    return steps_ >= spin_limit_ + yield_limit_;
  }

  /// Back to the spin phase. Call after useful work was found.
  void reset() noexcept { steps_ = 0; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t yield_limit_;
  std::uint32_t steps_ = 0;
};

}  // namespace pdc::concurrency
