// Spinlock family: test-and-set, test-and-test-and-set, and ticket locks.
//
// These are the standard "efficient synchronization" unit of a multicore
// programming course (LAU case study): identical BasicLockable interfaces
// so `std::scoped_lock` works over all of them, and the coherence-traffic
// differences between them are measured in bench/perf_locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "obs/obs.hpp"
#include "testkit/hooks.hpp"

namespace pdc::concurrency {

namespace detail {
/// Bounded exponential backoff: spin a few times, then yield so the lock
/// family behaves on oversubscribed/single-core hosts too. Under a
/// testkit::SimScheduler run, every pause rotates to another logical
/// thread so a spinner can never starve the lock holder.
class Backoff {
 public:
  void pause() {
    testkit::spin_yield("spinlock.spin");
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

 private:
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t spins_ = 4;
};
}  // namespace detail

/// Naive test-and-set lock: every acquisition attempt is a write, so
/// contended use ping-pongs the cache line between cores.
class TasLock {
 public:
  void lock() {
    testkit::yield_point("tas.lock");
    PDC_OBS_COUNT("pdc.lock.tas.acquire");
    detail::Backoff backoff;
    bool contended = false;
    std::uint64_t wait_start = 0;
    while (flag_.exchange(true, std::memory_order_acquire)) {
      if (!contended) {
        contended = true;
        if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      }
      backoff.pause();
    }
    if (contended) {
      PDC_OBS_COUNT("pdc.lock.tas.contended");
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("lock.tas").record(obs::now_us() - wait_start);
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() {
    testkit::yield_point("tas.unlock");
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// Test-and-test-and-set: spins on a read (local cache hit) and only
/// attempts the RMW when the lock looks free — the canonical fix for TAS.
class TtasLock {
 public:
  void lock() {
    testkit::yield_point("ttas.lock");
    PDC_OBS_COUNT("pdc.lock.ttas.acquire");
    detail::Backoff backoff;
    bool contended = false;
    std::uint64_t wait_start = 0;
    const auto note_contended = [&] {
      if (!contended) {
        contended = true;
        if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      }
    };
    for (;;) {
      while (flag_.load(std::memory_order_relaxed)) {
        note_contended();
        backoff.pause();
      }
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      note_contended();
    }
    if (contended) {
      PDC_OBS_COUNT("pdc.lock.ttas.contended");
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("lock.ttas").record(obs::now_us() - wait_start);
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Ticket lock: FIFO-fair; each thread takes a ticket and waits for its
/// turn, eliminating starvation at the cost of all waiters polling one
/// counter.
class TicketLock {
 public:
  void lock() {
    testkit::yield_point("ticket.lock");
    PDC_OBS_COUNT("pdc.lock.ticket.acquire");
    const std::uint64_t ticket =
        next_ticket_.fetch_add(1, std::memory_order_relaxed);
    detail::Backoff backoff;
    bool contended = false;
    std::uint64_t wait_start = 0;
    while (now_serving_.load(std::memory_order_acquire) != ticket) {
      if (!contended) {
        contended = true;
        if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      }
      backoff.pause();
    }
    if (contended) {
      PDC_OBS_COUNT("pdc.lock.ticket.contended");
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("lock.ticket").record(obs::now_us() - wait_start);
      }
    }
  }

  bool try_lock() {
    std::uint64_t serving = now_serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    // Succeed only when no one holds or awaits the lock.
    return next_ticket_.compare_exchange_strong(expected, serving + 1,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed);
  }

  void unlock() {
    now_serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> now_serving_{0};
};

/// MCS queue lock: each waiter spins on a flag in its OWN node, so under
/// contention every thread spins on a distinct cache line (no global
/// ping-pong) and handoff is FIFO. The design that made large-machine
/// locking scalable, and the classic contrast to TAS/TTAS in the
/// synchronization lecture.
class McsLock {
 public:
  /// Queue node, owned by the locking thread for the duration of the
  /// critical section (typically on its stack).
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  void lock(Node& node) {
    PDC_OBS_COUNT("pdc.lock.mcs.acquire");
    node.next.store(nullptr, std::memory_order_relaxed);
    Node* predecessor = tail_.exchange(&node, std::memory_order_acq_rel);
    if (predecessor != nullptr) {
      PDC_OBS_COUNT("pdc.lock.mcs.contended");
      std::uint64_t wait_start = 0;
      if constexpr (obs::kObsEnabled) wait_start = obs::now_us();
      node.locked.store(true, std::memory_order_relaxed);
      predecessor->next.store(&node, std::memory_order_release);
      detail::Backoff backoff;
      while (node.locked.load(std::memory_order_acquire)) backoff.pause();
      if constexpr (obs::kObsEnabled) {
        PDC_CONTENTION_SITE("lock.mcs").record(obs::now_us() - wait_start);
      }
    }
  }

  void unlock(Node& node) {
    Node* successor = node.next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      // Nobody visibly queued: try to close the queue.
      Node* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
        return;
      }
      // A successor is mid-enqueue; wait for its link to appear.
      detail::Backoff backoff;
      while ((successor = node.next.load(std::memory_order_acquire)) == nullptr) {
        backoff.pause();
      }
    }
    successor->locked.store(false, std::memory_order_release);
  }

  /// RAII guard carrying the queue node.
  class Guard {
   public:
    explicit Guard(McsLock& lock) : lock_(lock) { lock_.lock(node_); }
    ~Guard() { lock_.unlock(node_); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    McsLock& lock_;
    Node node_;
  };

 private:
  std::atomic<Node*> tail_{nullptr};
};

/// Peterson's two-thread mutual exclusion, expressed with seq_cst atomics
/// (the plain-variable textbook version is incorrect on real memory
/// models — that contrast is the lesson; see tests/concurrency_test).
class PetersonLock {
 public:
  /// `self` must be 0 or 1 and unique per thread.
  void lock(int self) {
    testkit::yield_point("peterson.lock");
    PDC_OBS_COUNT("pdc.lock.peterson.acquire");
    const int other = 1 - self;
    interested_[self].store(true, std::memory_order_seq_cst);
    turn_.store(other, std::memory_order_seq_cst);
    bool contended = false;
    while (interested_[other].load(std::memory_order_seq_cst) &&
           turn_.load(std::memory_order_seq_cst) == other) {
      contended = true;
      testkit::spin_yield("peterson.spin");
      std::this_thread::yield();
    }
    if (contended) PDC_OBS_COUNT("pdc.lock.peterson.contended");
  }

  void unlock(int self) {
    interested_[self].store(false, std::memory_order_seq_cst);
  }

 private:
  std::atomic<bool> interested_[2] = {false, false};
  std::atomic<int> turn_{0};
};

}  // namespace pdc::concurrency
