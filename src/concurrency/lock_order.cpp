#include "concurrency/lock_order.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pdc::concurrency {

namespace {
// Per-thread stack of currently held OrderedMutex ids. thread_local keeps
// the hot path allocation-free after the first acquisition.
thread_local std::vector<std::uint32_t> t_held;
}  // namespace

OrderedMutex::OrderedMutex(LockOrderRegistry& registry, std::string name)
    : registry_(registry), name_(std::move(name)),
      id_(registry_.register_mutex(name_)) {}

OrderedMutex::~OrderedMutex() { registry_.unregister_mutex(id_); }

void OrderedMutex::lock() {
  registry_.on_acquire(id_);
  mutex_.lock();
  t_held.push_back(id_);
}

void OrderedMutex::unlock() {
  registry_.on_release(id_);
  auto it = std::find(t_held.rbegin(), t_held.rend(), id_);
  PDC_CHECK_MSG(it != t_held.rend(), "unlock of mutex not held by this thread");
  t_held.erase(std::next(it).base());
  mutex_.unlock();
}

std::uint32_t LockOrderRegistry::register_mutex(const std::string& name) {
  std::scoped_lock lock(mutex_);
  names_.push_back(name);
  edges_.emplace_back();
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void LockOrderRegistry::unregister_mutex(std::uint32_t) {
  // Ids are never reused; keeping the node preserves reports that already
  // reference it. Nothing to do.
}

void LockOrderRegistry::on_acquire(std::uint32_t id) {
  if (t_held.empty()) return;
  std::scoped_lock lock(mutex_);
  for (std::uint32_t held : t_held) {
    if (held == id) continue;  // recursive patterns are out of scope
    // Establishing held -> id. If id -> held is already reachable, the
    // global graph would gain a cycle: report it.
    if (reachable_locked(id, held)) {
      violations_.push_back("lock-order inversion: '" + names_[id] +
                            "' acquired while holding '" + names_[held] +
                            "', but the reverse order was already established");
    }
    auto& out = edges_[held];
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
}

void LockOrderRegistry::on_release(std::uint32_t) {}

bool LockOrderRegistry::reachable_locked(std::uint32_t from,
                                         std::uint32_t to) const {
  if (from == to) return true;
  std::vector<bool> seen(edges_.size(), false);
  std::vector<std::uint32_t> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const std::uint32_t node = stack.back();
    stack.pop_back();
    for (std::uint32_t next : edges_[node]) {
      if (next == to) return true;
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

std::vector<std::string> LockOrderRegistry::violations() const {
  std::scoped_lock lock(mutex_);
  return violations_;
}

}  // namespace pdc::concurrency
