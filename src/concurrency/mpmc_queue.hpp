// MpmcQueue<T>: a bounded lock-free multi-producer multi-consumer queue
// (Dmitry Vyukov's bounded MPMC algorithm).
//
// Each cell carries a sequence number that encodes, relative to the
// producer/consumer tickets, whether the cell is empty, full, or being
// visited a lap later. A producer claims a cell by CASing enqueue_pos,
// writes the value, then publishes it by bumping the cell sequence with a
// release store; a consumer claims with a CAS on dequeue_pos, reads under
// the matching acquire, and releases the cell for the next lap. Ownership
// of a cell is exclusive between the claim and the sequence bump, so T can
// be any movable type (no trivially-copyable restriction) — the scheduler
// stores parallel::Task by value, making external spawns allocation-free.
//
// This is the scheduler's *injection* queue: external threads push here
// instead of locking a victim's deque (see docs/scheduler.md). Contrast
// with BoundedQueue, the blocking monitor-style queue used where teaching
// the condition-variable protocol is the point.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace pdc::concurrency {

template <typename T>
class MpmcQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Attempts to enqueue. On failure (queue full) returns false and
  /// `value` is left untouched, so the caller can retry with backoff.
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the cell is still occupied one full lap back: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Attempts to dequeue into `out`; false when the queue is empty.
  bool try_pop(T& out) {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::ptrdiff_t>(seq) -
                        static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // nothing published at this ticket yet: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate (monitoring only).
  [[nodiscard]] std::size_t size_estimate() const noexcept {
    const std::size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    const std::size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence;
    T value;
  };

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace pdc::concurrency
