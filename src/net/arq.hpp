// Automatic repeat request (ARQ) protocols over lossy datagrams.
//
// Reliability from first principles — what StreamSocket gives for free,
// built by hand so it can be measured: stop-and-wait (one frame in flight)
// versus go-back-N (sliding window of W frames, cumulative ACKs,
// retransmit-window-on-timeout). bench/lab_rit_arq sweeps loss rate and
// window size; the textbook shapes (window hides latency, loss hurts GBN
// more per event, stop-and-wait caps throughput at frame/RTT) must hold.
#pragma once

#include <chrono>
#include <cstdint>

#include "net/framing.hpp"
#include "net/network.hpp"

namespace pdc::net {

struct ArqConfig {
  std::size_t frame_payload = 1024;  // bytes of data per frame
  std::size_t window = 8;            // go-back-N only
  std::chrono::milliseconds timeout{5};
  std::size_t max_retries = 1000;  // give up threshold (per frame/window)
};

struct ArqStats {
  std::uint64_t data_frames_sent = 0;  // including retransmissions
  std::uint64_t retransmissions = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t timeouts = 0;
  double seconds = 0.0;
  std::size_t bytes_delivered = 0;

  /// Useful frames / frames sent — the protocol-efficiency figure.
  [[nodiscard]] double efficiency() const {
    if (data_frames_sent == 0) return 0.0;
    return static_cast<double>(data_frames_sent - retransmissions) /
           static_cast<double>(data_frames_sent);
  }
  [[nodiscard]] double goodput_bytes_per_sec() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(bytes_delivered) / seconds;
  }
};

/// Sends `data` to `dest` with the stop-and-wait protocol; the peer must be
/// running `arq_receive` on the destination socket. Fails with kTimeout
/// when `max_retries` expires.
support::Result<ArqStats> arq_send_stop_and_wait(DatagramSocket& socket,
                                                 const Address& dest,
                                                 const Bytes& data,
                                                 const ArqConfig& config = {});

/// Sends `data` with go-back-N (window = config.window).
support::Result<ArqStats> arq_send_go_back_n(DatagramSocket& socket,
                                             const Address& dest,
                                             const Bytes& data,
                                             const ArqConfig& config = {});

/// Sends `data` with selective repeat (window = config.window): only the
/// specific frames that time out unacknowledged are retransmitted; the
/// receiver buffers out-of-order frames. Must be paired with
/// `arq_receive_selective` (per-frame ACKs, not cumulative).
support::Result<ArqStats> arq_send_selective_repeat(
    DatagramSocket& socket, const Address& dest, const Bytes& data,
    const ArqConfig& config = {});

/// Receiver for selective repeat: buffers out-of-order data frames, ACKs
/// every frame individually, returns once all frames up to the final one
/// have arrived (then lingers to re-ACK).
support::Result<Bytes> arq_receive_selective(
    DatagramSocket& socket,
    std::chrono::milliseconds idle_timeout = std::chrono::milliseconds(2000),
    std::chrono::milliseconds linger = std::chrono::milliseconds(50));

/// Receiver side shared by both protocols: accepts in-order data frames,
/// sends cumulative ACKs (also for out-of-order arrivals, re-ACKing the
/// last in-order frame), returns the reassembled data when the final frame
/// arrives in order. After the final frame it lingers for `linger`
/// (TIME_WAIT analogue), re-ACKing retransmissions in case the final ACK
/// was lost — without this the sender can stall forever, which is exactly
/// the lesson the parameter teaches.
support::Result<Bytes> arq_receive(
    DatagramSocket& socket,
    std::chrono::milliseconds idle_timeout = std::chrono::milliseconds(2000),
    std::chrono::milliseconds linger = std::chrono::milliseconds(50));

}  // namespace pdc::net
