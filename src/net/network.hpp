// Simulated network fabric: hosts, lossy datagrams, reliable streams.
//
// The RIT breadth course (paper §IV-C) teaches "network communication with
// connections and datagrams" — both live here over one fabric:
//
//  - DatagramSocket: unreliable, unordered delivery with configurable
//    latency, jitter, loss and duplication (the substrate the ARQ lessons
//    in arq.hpp are built on);
//  - Listener/StreamSocket: connection-oriented, reliable, in-order byte
//    streams (the kernel-TCP abstraction the client-server framework in
//    server.hpp uses). By default stream traffic ignores the loss/jitter
//    knobs the way applications never see TCP's retransmissions —
//    reliability as a *service*; how it is achieved is taught separately
//    by arq.hpp. NetConfig::impair_streams opts streams into the fault
//    model as *delay*: a "dropped" chunk costs a retransmit penalty but
//    still arrives, and per-direction delivery times are clamped monotone
//    so the byte stream stays in order.
//
// A single dispatcher thread delivers packets at their scheduled times, so
// latency effects are real wall-clock effects observable in benches.
//
// Readiness (event-driven servers): a StreamSocket or Listener can be
// *watched* by a ReadySet. Arriving bytes, a peer close, or a pending
// accept enqueue the socket's tag exactly once; the owner drains tags in
// batches with ReadySet::poll, consumes the socket non-blockingly
// (try_recv_into / try_accept), and re-arms. rearm() re-enqueues the tag
// if data raced in while the owner was consuming, so no wakeup is lost.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/address.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace pdc::testkit {
class FaultInjector;
}  // namespace pdc::testkit

namespace pdc::net {

struct NetConfig {
  double latency_ms = 0.05;     // one-way propagation
  double jitter_ms = 0.0;       // uniform [0, jitter) added per datagram
  double loss = 0.0;            // datagram drop probability
  double duplicate = 0.0;       // datagram duplication probability
  std::uint64_t seed = 0x5eed;  // impairment randomness
  // Apply the impairment model to stream chunks too — as delay only
  // (drop/reorder decisions become a retransmit penalty of the injector's
  // reorder_ms; without an injector, jitter_ms applies). Delivery stays
  // reliable and in-order: per-direction due times are clamped monotone.
  bool impair_streams = false;
};

class Network;
class ReadySet;

/// Registration of one watched endpoint (guarded by the endpoint's mutex).
/// `queued` keeps each tag enqueued at most once between rearm()s.
struct WatchState {
  ReadySet* set = nullptr;
  std::uint64_t tag = 0;
  bool queued = false;
};

/// Level-triggered-with-rearm readiness queue for an event loop. Watched
/// endpoints push their tag when they become ready; poll() hands the
/// accumulated batch to the loop in one call (one wakeup can carry
/// thousands of ready connections). Tags are just integers — a tag for an
/// endpoint the consumer already closed is harmless and simply ignored.
class ReadySet {
 public:
  ReadySet() = default;
  ReadySet(const ReadySet&) = delete;
  ReadySet& operator=(const ReadySet&) = delete;

  /// Blocks up to `timeout` for at least one ready tag (or a wake()),
  /// appends the whole batch to `out`, and returns how many were added.
  std::size_t poll(std::vector<std::uint64_t>& out,
                   std::chrono::milliseconds timeout);

  /// Unblocks a poll() in progress (shutdown path).
  void wake();

  /// Enqueues a tag directly (callable by watched endpoints and by event
  /// loops that need to self-post work).
  void push(std::uint64_t tag);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::uint64_t> ready_;
  bool woken_ = false;
};

/// Unreliable, unordered message socket (UDP analogue).
class DatagramSocket {
 public:
  ~DatagramSocket();
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  [[nodiscard]] Address local() const { return local_; }

  /// Fire-and-forget send; the fabric may drop, delay or duplicate it.
  void send_to(const Address& to, Bytes payload);

  /// Blocking receive.
  support::Result<Datagram> recv();

  /// Timed receive; kTimeout when nothing arrives in time.
  support::Result<Datagram> recv_for(std::chrono::milliseconds timeout);

 private:
  friend class Network;
  DatagramSocket(Network& net, Address local) : net_(net), local_(local) {
    if constexpr (obs::kObsEnabled) {
      // Host-labeled twin of the flat pdc.net.received aggregate. Cached
      // here — the PDC_OBS_* macros' function-local statics cannot hold a
      // per-host label.
      host_received_ = &obs::MetricsRegistry::instance().counter(
          "pdc.net.host_received", {{"host", std::to_string(local_.host)}});
    }
  }

  void deliver(Datagram dgram);

  Network& net_;
  Address local_;
  obs::Counter* host_received_ = nullptr;
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Datagram> queue_;
  bool closed_ = false;
};

/// Reliable, in-order, bidirectional byte stream (TCP analogue).
class StreamSocket {
 public:
  StreamSocket() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] Address peer() const;

  /// True when both handles refer to the same underlying connection.
  [[nodiscard]] bool is_same(const StreamSocket& other) const {
    return state_ != nullptr && state_ == other.state_;
  }

  /// Sends the whole buffer (never partial). kClosed after either side
  /// closed the connection.
  support::Status send(const Bytes& data);
  support::Status send_text(const std::string& text) { return send(to_bytes(text)); }

  /// Receives up to `max_bytes` (at least 1 when data is available);
  /// kClosed once the peer closed and the buffer is drained.
  support::Result<Bytes> recv(std::size_t max_bytes = 64 * 1024);

  /// Receives exactly `n` bytes or fails with kClosed.
  support::Result<Bytes> recv_exact(std::size_t n);

  /// What a non-blocking drain observed.
  struct Drained {
    std::size_t bytes = 0;  // bytes appended to the caller's buffer
    bool closed = false;    // peer has closed this direction
  };

  /// Non-blocking: appends every buffered inbound byte to `out` and
  /// reports whether the peer closed. Never waits — the event-loop
  /// counterpart of recv(). Bytes already appended remain valid even when
  /// `closed` is set (a FIN behind buffered data).
  Drained try_recv_into(Bytes& out);

  /// Registers this socket's inbound direction with a ReadySet: `tag` is
  /// enqueued when data or a close is (or becomes) available. One watcher
  /// per socket; watching again replaces the previous registration.
  void watch(ReadySet* set, std::uint64_t tag);

  /// Clears the queued-flag and re-enqueues the tag if the socket became
  /// ready while the owner was consuming it. Call after each drain.
  void rearm();

  /// Removes the ReadySet registration (before destroying the ReadySet).
  void unwatch();

  /// Closes this direction; the peer's recv drains then reports kClosed.
  void close();

  /// Hard local teardown: immediately marks both directions closed and
  /// wakes any blocked reader on either end (no latency; used by server
  /// shutdown to unblock handler threads).
  void abort();

 private:
  friend class Network;
  friend class Listener;

  struct Half {  // one direction's receive buffer
    std::mutex mutex;
    std::condition_variable arrived;
    // Contiguous stream buffer; live bytes are [head, buffer.size()).
    // Contiguity is what makes zero-copy framing possible: a codec can
    // parse headers and hand out payload views in place.
    Bytes buffer;
    std::size_t head = 0;
    bool closed = false;
    WatchState watch;

    [[nodiscard]] std::size_t available() const { return buffer.size() - head; }
    /// Reclaims the consumed prefix once it dominates the buffer.
    void compact() {
      if (head == buffer.size()) {
        buffer.clear();
        head = 0;
      } else if (head >= 4096 && head * 2 >= buffer.size()) {
        buffer.erase(buffer.begin(),
                     buffer.begin() + static_cast<std::ptrdiff_t>(head));
        head = 0;
      }
    }
  };
  struct ConnState {
    Half a_to_b;
    Half b_to_a;
    Address a, b;
    // Last scheduled delivery time per direction (guarded by the Network
    // mutex): impairment delays are clamped so bytes — and the FIN — never
    // overtake earlier bytes.
    double a_to_b_due = 0.0;
    double b_to_a_due = 0.0;
  };

  StreamSocket(Network* net, std::shared_ptr<ConnState> state, bool is_a)
      : net_(net), state_(std::move(state)), is_a_(is_a) {}

  Half& inbound() const { return is_a_ ? state_->b_to_a : state_->a_to_b; }
  Half& outbound() const { return is_a_ ? state_->a_to_b : state_->b_to_a; }

  Network* net_ = nullptr;
  std::shared_ptr<ConnState> state_;
  bool is_a_ = false;
};

/// Passive endpoint accepting stream connections (listening socket).
class Listener {
 public:
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] Address local() const { return local_; }

  /// Blocks for the next connection; kClosed after shutdown().
  support::Result<StreamSocket> accept();

  /// Non-blocking accept: kUnavailable when nothing is pending, kClosed
  /// after shutdown() once the backlog is drained.
  support::Result<StreamSocket> try_accept();

  /// ReadySet registration mirroring StreamSocket::watch/rearm: the tag is
  /// enqueued when a connection is (or becomes) pending.
  void watch(ReadySet* set, std::uint64_t tag);
  void rearm();
  void unwatch();

  /// Unblocks pending and future accepts with kClosed.
  void shutdown();

 private:
  friend class Network;
  Listener(Network& net, Address local) : net_(net), local_(local) {}

  void deliver(StreamSocket socket);

  Network& net_;
  Address local_;
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<StreamSocket> pending_;
  bool closed_ = false;
  WatchState watch_;
};

class Network {
 public:
  explicit Network(int hosts, NetConfig config = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int hosts() const { return hosts_; }
  [[nodiscard]] const NetConfig& config() const { return config_; }

  /// Binds a datagram socket; the address must be free. The returned
  /// socket must not outlive the Network.
  std::unique_ptr<DatagramSocket> open_datagram(int host, std::uint16_t port);

  /// Starts listening; the address must be free.
  std::unique_ptr<Listener> listen(int host, std::uint16_t port);

  /// Connects from `from_host` (ephemeral port) to a listener at `to`.
  /// Blocks for one round trip; kNotFound if nobody listens there.
  support::Result<StreamSocket> connect(int from_host, const Address& to);

  /// Non-blocking connect: schedules the SYN and returns immediately;
  /// `done` is invoked on the dispatcher thread with the client socket
  /// (or kNotFound) one latency later. `done` must not block — it runs in
  /// the fabric's delivery loop. This is how a load generator opens 10^5+
  /// connections without 10^5 round-trip waits in series.
  void connect_async(int from_host, const Address& to,
                     std::function<void(support::Result<StreamSocket>)> done);

  /// Datagrams dropped by the impairment model so far.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Replaces the NetConfig impairment model for datagram traffic with a
  /// testkit::FaultInjector: drop/duplicate/delay come from the injector's
  /// seeded decision stream, and "reordered" packets get an extra delay so
  /// later packets overtake them. Stream traffic stays reliable; with
  /// NetConfig::impair_streams the injector's decisions additionally delay
  /// stream chunks (drop => retransmit penalty — see NetConfig). Pass
  /// nullptr to restore the built-in model.
  void set_fault_injector(std::shared_ptr<testkit::FaultInjector> injector);

 private:
  friend class DatagramSocket;
  friend class StreamSocket;
  friend class Listener;

  struct Event {
    double due;  // seconds on the steady clock
    std::uint64_t seq;
    std::function<void()> deliver;
  };
  struct EventOrder {
    bool operator()(const Event& x, const Event& y) const {
      return x.due > y.due || (x.due == y.due && x.seq > y.seq);
    }
  };

  static double now();
  /// Schedules `deliver` after the configured latency (plus jitter when
  /// `impaired`); applies loss/duplication when `impaired`.
  void schedule(std::function<void()> deliver, bool impaired);
  void dispatcher_loop();

  void unbind_datagram(const Address& addr);
  void unbind_listener(const Address& addr);
  void send_datagram(const Address& from, const Address& to, Bytes payload);
  void send_stream_bytes(const std::shared_ptr<StreamSocket::ConnState>& state,
                         bool from_a, Bytes data);
  void close_stream_half(const std::shared_ptr<StreamSocket::ConnState>& state,
                         bool from_a);
  /// Extra stream delay (ms) from the impairment model; caller holds mutex_.
  double stream_impairment_ms();

  int hosts_;
  NetConfig config_;
  // Per-host labeled send counters (pdc.net.host_sent{host="<i>"}),
  // resolved once at construction; empty under PDCKIT_OBS_NOOP.
  std::vector<obs::Counter*> host_sent_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::uint64_t dropped_ = 0;
  support::Rng rng_;
  std::shared_ptr<testkit::FaultInjector> injector_;
  std::map<Address, DatagramSocket*> datagram_sockets_;
  std::map<Address, Listener*> listeners_;
  std::uint16_t next_ephemeral_ = 40000;

  std::thread dispatcher_;
};

}  // namespace pdc::net
