// Simulated network fabric: hosts, lossy datagrams, reliable streams.
//
// The RIT breadth course (paper §IV-C) teaches "network communication with
// connections and datagrams" — both live here over one fabric:
//
//  - DatagramSocket: unreliable, unordered delivery with configurable
//    latency, jitter, loss and duplication (the substrate the ARQ lessons
//    in arq.hpp are built on);
//  - Listener/StreamSocket: connection-oriented, reliable, in-order byte
//    streams (the kernel-TCP abstraction the client-server framework in
//    server.hpp uses). Stream traffic ignores the loss/jitter knobs the
//    way applications never see TCP's retransmissions — reliability as a
//    *service*; how it is achieved is taught separately by arq.hpp.
//
// A single dispatcher thread delivers packets at their scheduled times, so
// latency effects are real wall-clock effects observable in benches.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "net/address.hpp"
#include "obs/obs.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace pdc::testkit {
class FaultInjector;
}  // namespace pdc::testkit

namespace pdc::net {

struct NetConfig {
  double latency_ms = 0.05;     // one-way propagation
  double jitter_ms = 0.0;       // uniform [0, jitter) added per datagram
  double loss = 0.0;            // datagram drop probability
  double duplicate = 0.0;       // datagram duplication probability
  std::uint64_t seed = 0x5eed;  // impairment randomness
};

class Network;

/// Unreliable, unordered message socket (UDP analogue).
class DatagramSocket {
 public:
  ~DatagramSocket();
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;

  [[nodiscard]] Address local() const { return local_; }

  /// Fire-and-forget send; the fabric may drop, delay or duplicate it.
  void send_to(const Address& to, Bytes payload);

  /// Blocking receive.
  support::Result<Datagram> recv();

  /// Timed receive; kTimeout when nothing arrives in time.
  support::Result<Datagram> recv_for(std::chrono::milliseconds timeout);

 private:
  friend class Network;
  DatagramSocket(Network& net, Address local) : net_(net), local_(local) {
    if constexpr (obs::kObsEnabled) {
      // Host-labeled twin of the flat pdc.net.received aggregate. Cached
      // here — the PDC_OBS_* macros' function-local statics cannot hold a
      // per-host label.
      host_received_ = &obs::MetricsRegistry::instance().counter(
          "pdc.net.host_received", {{"host", std::to_string(local_.host)}});
    }
  }

  void deliver(Datagram dgram);

  Network& net_;
  Address local_;
  obs::Counter* host_received_ = nullptr;
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Datagram> queue_;
  bool closed_ = false;
};

/// Reliable, in-order, bidirectional byte stream (TCP analogue).
class StreamSocket {
 public:
  StreamSocket() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] Address peer() const;

  /// Sends the whole buffer (never partial). kClosed after either side
  /// closed the connection.
  support::Status send(const Bytes& data);
  support::Status send_text(const std::string& text) { return send(to_bytes(text)); }

  /// Receives up to `max_bytes` (at least 1 when data is available);
  /// kClosed once the peer closed and the buffer is drained.
  support::Result<Bytes> recv(std::size_t max_bytes = 64 * 1024);

  /// Receives exactly `n` bytes or fails with kClosed.
  support::Result<Bytes> recv_exact(std::size_t n);

  /// Closes this direction; the peer's recv drains then reports kClosed.
  void close();

  /// Hard local teardown: immediately marks both directions closed and
  /// wakes any blocked reader on either end (no latency; used by server
  /// shutdown to unblock handler threads).
  void abort();

 private:
  friend class Network;
  friend class Listener;

  struct Half {  // one direction's receive buffer
    std::mutex mutex;
    std::condition_variable arrived;
    std::deque<std::byte> buffer;
    bool closed = false;
  };
  struct ConnState {
    Half a_to_b;
    Half b_to_a;
    Address a, b;
  };

  StreamSocket(Network* net, std::shared_ptr<ConnState> state, bool is_a)
      : net_(net), state_(std::move(state)), is_a_(is_a) {}

  Half& inbound() const { return is_a_ ? state_->b_to_a : state_->a_to_b; }
  Half& outbound() const { return is_a_ ? state_->a_to_b : state_->b_to_a; }

  Network* net_ = nullptr;
  std::shared_ptr<ConnState> state_;
  bool is_a_ = false;
};

/// Passive endpoint accepting stream connections (listening socket).
class Listener {
 public:
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] Address local() const { return local_; }

  /// Blocks for the next connection; kClosed after shutdown().
  support::Result<StreamSocket> accept();

  /// Unblocks pending and future accepts with kClosed.
  void shutdown();

 private:
  friend class Network;
  Listener(Network& net, Address local) : net_(net), local_(local) {}

  void deliver(StreamSocket socket);

  Network& net_;
  Address local_;
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<StreamSocket> pending_;
  bool closed_ = false;
};

class Network {
 public:
  explicit Network(int hosts, NetConfig config = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int hosts() const { return hosts_; }
  [[nodiscard]] const NetConfig& config() const { return config_; }

  /// Binds a datagram socket; the address must be free. The returned
  /// socket must not outlive the Network.
  std::unique_ptr<DatagramSocket> open_datagram(int host, std::uint16_t port);

  /// Starts listening; the address must be free.
  std::unique_ptr<Listener> listen(int host, std::uint16_t port);

  /// Connects from `from_host` (ephemeral port) to a listener at `to`.
  /// Blocks for one round trip; kNotFound if nobody listens there.
  support::Result<StreamSocket> connect(int from_host, const Address& to);

  /// Datagrams dropped by the impairment model so far.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Replaces the NetConfig impairment model for datagram traffic with a
  /// testkit::FaultInjector: drop/duplicate/delay come from the injector's
  /// seeded decision stream, and "reordered" packets get an extra delay so
  /// later packets overtake them. Stream traffic stays reliable. Pass
  /// nullptr to restore the built-in model.
  void set_fault_injector(std::shared_ptr<testkit::FaultInjector> injector);

 private:
  friend class DatagramSocket;
  friend class StreamSocket;
  friend class Listener;

  struct Event {
    double due;  // seconds on the steady clock
    std::uint64_t seq;
    std::function<void()> deliver;
  };
  struct EventOrder {
    bool operator()(const Event& x, const Event& y) const {
      return x.due > y.due || (x.due == y.due && x.seq > y.seq);
    }
  };

  static double now();
  /// Schedules `deliver` after the configured latency (plus jitter when
  /// `impaired`); applies loss/duplication when `impaired`.
  void schedule(std::function<void()> deliver, bool impaired);
  void dispatcher_loop();

  void unbind_datagram(const Address& addr);
  void unbind_listener(const Address& addr);
  void send_datagram(const Address& from, const Address& to, Bytes payload);
  void send_stream_bytes(const std::shared_ptr<StreamSocket::ConnState>& state,
                         bool from_a, Bytes data);
  void close_stream_half(const std::shared_ptr<StreamSocket::ConnState>& state,
                         bool from_a);

  int hosts_;
  NetConfig config_;
  // Per-host labeled send counters (pdc.net.host_sent{host="<i>"}),
  // resolved once at construction; empty under PDCKIT_OBS_NOOP.
  std::vector<obs::Counter*> host_sent_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::uint64_t dropped_ = 0;
  support::Rng rng_;
  std::shared_ptr<testkit::FaultInjector> injector_;
  std::map<Address, DatagramSocket*> datagram_sockets_;
  std::map<Address, Listener*> listeners_;
  std::uint16_t next_ephemeral_ = 40000;

  std::thread dispatcher_;
};

}  // namespace pdc::net
