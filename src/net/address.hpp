// Addressing types for the simulated network.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace pdc::net {

using Bytes = std::vector<std::byte>;

/// (host, port) endpoint in a simulated network.
struct Address {
  int host = 0;
  std::uint16_t port = 0;

  auto operator<=>(const Address&) const = default;

  [[nodiscard]] std::string to_string() const {
    return "host" + std::to_string(host) + ":" + std::to_string(port);
  }
};

/// A delivered datagram. `trace` carries the sender's causal metadata
/// (span + Lamport time) for obs trace stitching; all-zero when no
/// collector is running.
struct Datagram {
  Address from;
  Bytes payload;
  obs::WireTrace trace;
};

/// Bytes <-> string helpers (application payloads are often text).
inline Bytes to_bytes(const std::string& s) {
  Bytes b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) b[i] = static_cast<std::byte>(s[i]);
  return b;
}

inline std::string to_string(const Bytes& b) {
  std::string s(b.size(), '\0');
  for (std::size_t i = 0; i < b.size(); ++i) s[i] = static_cast<char>(b[i]);
  return s;
}

}  // namespace pdc::net
