#include "net/loadgen.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "net/framing.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::net {

namespace {

constexpr std::size_t kConnectWave = 8192;  // in-flight connect_async cap
constexpr std::size_t kRateBins = 2048;     // inverse-CDF resolution

/// Relative arrival rate of curve `curve` at normalized time x in [0, 1).
double rate_at(const LoadGenConfig& config, double x) {
  switch (config.curve) {
    case ArrivalCurve::kConstant:
      return 1.0;
    case ArrivalCurve::kDiurnal:
      // One "day" compressed into the window; clamped so the trough never
      // goes fully quiet (real diurnal traffic doesn't either).
      return std::max(0.05,
                      1.0 + config.diurnal_amplitude *
                                std::sin(2.0 * 3.14159265358979323846 * x));
    case ArrivalCurve::kBurst: {
      // `bursts` evenly spaced windows, each 5% of the run, at
      // burst_height times the baseline.
      const int n = std::max(1, config.bursts);
      for (int j = 0; j < n; ++j) {
        const double center = (j + 0.5) / n;
        if (std::abs(x - center) < 0.025) {
          return std::max(1.0, config.burst_height);
        }
      }
      return 1.0;
    }
    case ArrivalCurve::kThunderingHerd: {
      // Near-silent baseline; the single bin holding each herd's center
      // carries an enormous weight, so almost all requests land at the
      // spike instants.
      const int n = std::max(1, config.herds);
      const auto bin = static_cast<std::size_t>(x * kRateBins);
      for (int j = 0; j < n; ++j) {
        const double center = (j + 0.5) / n;
        const auto spike = std::min<std::size_t>(
            kRateBins - 1, static_cast<std::size_t>(center * kRateBins));
        if (bin == spike) return static_cast<double>(kRateBins);
      }
      return 0.02;
    }
  }
  return 1.0;
}

/// One in-flight request: its scheduled time, and (when tracing) the
/// root span closed on reply arrival.
struct PendingShot {
  double at = 0.0;
  obs::ActiveSpan span;
};

/// One connection as a driver thread sees it.
struct GenConn {
  StreamSocket socket;
  Bytes rx;                     // reply bytes, frames parsed in place
  std::size_t off = 0;          // parse offset
  std::vector<PendingShot> pending;  // unanswered requests, send order
  std::size_t pending_head = 0; // replies arrive in order
  bool alive = false;
};

struct DriverResult {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t closed_early = 0;
  obs::Histogram::Snapshot latency;
  obs::Histogram::Snapshot send_lag;
};

}  // namespace

std::vector<double> LoadGen::arrival_times(const LoadGenConfig& config) {
  std::vector<double> times;
  if (config.requests == 0) return times;
  times.reserve(config.requests);
  // Discretize the rate curve, then invert its CDF with one monotone walk
  // (targets are increasing, so the whole schedule is O(requests + bins)).
  std::array<double, kRateBins> weight{};
  double total = 0.0;
  for (std::size_t b = 0; b < kRateBins; ++b) {
    weight[b] = rate_at(config, (static_cast<double>(b) + 0.5) / kRateBins);
    total += weight[b];
  }
  std::size_t bin = 0;
  double cumulative = weight[0];
  for (std::size_t i = 0; i < config.requests; ++i) {
    const double target =
        (static_cast<double>(i) + 0.5) / static_cast<double>(config.requests) *
        total;
    while (cumulative < target && bin + 1 < kRateBins) {
      ++bin;
      cumulative += weight[bin];
    }
    // Interpolate inside the bin: how much of this bin's weight was still
    // unconsumed when the target fell into it.
    const double into = 1.0 - std::min(1.0, (cumulative - target) / weight[bin]);
    times.push_back(config.duration_s * (static_cast<double>(bin) + into) /
                    static_cast<double>(kRateBins));
  }
  return times;
}

LoadGenReport LoadGen::run(const LoadGenConfig& config) {
  PDC_CHECK(config.connections >= 1);
  PDC_CHECK(config.drivers >= 1);
  PDC_CHECK(config.client_hosts >= 1);
  LoadGenReport report;

  // ---- Discovery phase: follow redirects to the leader. -----------------
  Address target = server_;
  if (config.route_to_leader) {
    PDC_CHECK_MSG(config.probe_request != nullptr &&
                      config.redirect_of != nullptr,
                  "route_to_leader needs probe_request and redirect_of");
    if (!config.cluster.empty()) target = config.cluster.front();
    std::size_t fallback = 0;
    for (std::size_t hop = 0; hop < config.max_redirect_hops; ++hop) {
      std::optional<Address> redirect;
      bool probed = false;
      auto socket = net_.connect(config.first_client_host, target);
      if (socket.is_ok()) {
        StreamSocket probe = std::move(socket).value();
        if (MessageCodec::send_message(probe, config.probe_request())
                .is_ok()) {
          auto reply = MessageCodec::recv_message(probe);
          if (reply.is_ok()) {
            probed = true;
            redirect = config.redirect_of(reply.value());
          }
        }
        probe.close();
      }
      if (probed && !redirect.has_value()) break;  // target claims leadership
      if (probed) {
        target = redirect.value();
        ++report.redirects;
      } else if (!config.cluster.empty()) {
        // Dead or unreachable candidate: rotate to the next one.
        fallback = (fallback + 1) % config.cluster.size();
        target = config.cluster[fallback];
        ++report.redirects;
      }
    }
  }
  report.target = target;

  // ---- Connect phase: async waves, no serial round-trip waits. ----------
  std::vector<StreamSocket> sockets(config.connections);
  {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t completed = 0;
    std::uint64_t failures = 0;
    std::size_t issued = 0;
    while (issued < config.connections) {
      const std::size_t wave =
          std::min(kConnectWave, config.connections - issued);
      for (std::size_t k = 0; k < wave; ++k) {
        const std::size_t slot = issued + k;
        const int host = config.first_client_host +
                         static_cast<int>(slot %
                                          static_cast<std::size_t>(
                                              config.client_hosts));
        net_.connect_async(
            host, target,
            [&, slot](support::Result<StreamSocket> result) {
              std::scoped_lock lock(mutex);
              if (result.is_ok()) {
                sockets[slot] = std::move(result).value();
              } else {
                ++failures;
              }
              ++completed;
              // Notify under the lock: run()'s stack owns the CV.
              cv.notify_one();
            });
      }
      issued += wave;
      std::unique_lock lock(mutex);
      cv.wait(lock, [&] { return completed == issued; });
    }
    report.connect_failures = failures;
    report.connected = config.connections - failures;
  }

  // ---- Schedule phase: deterministic arrivals, round-robin over conns. --
  const std::vector<double> schedule = arrival_times(config);
  struct Shot {
    double at;
    std::uint32_t conn;  // index into the driver's partition
    std::uint64_t seq;   // global request sequence (trace id = seq + 1)
  };
  // Conn i belongs to driver i % drivers; its local index is i / drivers.
  std::vector<std::vector<Shot>> plans(config.drivers);
  std::vector<std::vector<GenConn>> partitions(config.drivers);
  for (std::size_t d = 0; d < config.drivers; ++d) {
    const std::size_t local =
        (config.connections + config.drivers - 1 - d) / config.drivers;
    partitions[d].resize(local);
    plans[d].reserve(schedule.size() / config.drivers + 1);
  }
  for (std::size_t i = 0; i < config.connections; ++i) {
    GenConn& conn = partitions[i % config.drivers][i / config.drivers];
    conn.socket = std::move(sockets[i]);
    conn.alive = conn.socket.valid();
  }
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const std::size_t conn = i % config.connections;
    plans[conn % config.drivers].push_back(
        Shot{schedule[i], static_cast<std::uint32_t>(conn / config.drivers),
             static_cast<std::uint64_t>(i)});
  }

  // One request template for the whole run: the framed wire bytes are
  // identical for every request, so encode once and reuse the buffer.
  // Tracing or a request_of builder switches to per-request encoding.
  Bytes wire;
  Bytes template_payload(config.payload_bytes);
  {
    support::Rng rng(config.seed);
    for (auto& b : template_payload) {
      b = static_cast<std::byte>(rng.next_u64() & 0xff);
    }
    MessageCodec::encode_message(template_payload, wire);
  }

  // ---- Drive phase. -----------------------------------------------------
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t t0_us = obs::now_us();  // span-clock origin of the run
  auto elapsed_s = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  const bool tracing = config.trace && obs::span_enabled();
  const bool per_request = tracing || config.request_of != nullptr;
  std::vector<DriverResult> results(config.drivers);
  std::vector<std::thread> threads;
  threads.reserve(config.drivers);
  for (std::size_t d = 0; d < config.drivers; ++d) {
    threads.emplace_back([&, d] {
      std::vector<GenConn>& conns = partitions[d];
      const std::vector<Shot>& plan = plans[d];
      DriverResult& result = results[d];
      obs::Histogram latency;
      obs::Histogram send_lag;
      ReadySet ready;
      for (std::size_t c = 0; c < conns.size(); ++c) {
        if (conns[c].alive) conns[c].socket.watch(&ready, c);
      }
      std::uint64_t outstanding = 0;
      std::size_t next = 0;
      std::vector<std::uint64_t> tags;
      auto drain_conn = [&](GenConn& conn) {
        if (!conn.alive) return;
        const auto drained = conn.socket.try_recv_into(conn.rx);
        for (;;) {
          BytesView reply;
          if (MessageCodec::scan_message(conn.rx, conn.off, reply) !=
              MessageCodec::Scan::kFrame) {
            break;
          }
          // Replies are in order on a stream: this reply answers the
          // oldest pending request. Open-loop latency counts from the
          // SCHEDULED time — queueing delay lands in the tail.
          PendingShot& shot = conn.pending[conn.pending_head++];
          latency.record((elapsed_s() - shot.at) * 1e6);
          obs::span_end(shot.span);
          ++result.received;
          --outstanding;
        }
        if (conn.off == conn.rx.size()) {
          conn.rx.clear();
          conn.off = 0;
        }
        if (drained.closed) {
          const auto lost = conn.pending.size() - conn.pending_head;
          result.closed_early += lost;
          outstanding -= lost;
          conn.alive = false;
          conn.socket.unwatch();
          // Requests that died with the connection close as error spans —
          // exactly the traces tail sampling must keep.
          while (conn.pending_head < conn.pending.size()) {
            obs::span_end(conn.pending[conn.pending_head++].span,
                          /*error=*/true);
          }
        } else {
          conn.socket.rearm();
        }
      };
      for (;;) {
        const double now_s = elapsed_s();
        while (next < plan.size() && plan[next].at <= now_s) {
          GenConn& conn = conns[plan[next].conn];
          obs::ActiveSpan root;
          const Bytes* frame = &wire;
          Bytes encoded;
          if (per_request) {
            if (tracing) {
              // Root backdated to the scheduled time: send-queue lag is
              // part of the request's story. client.queue covers exactly
              // that stretch (scheduled -> this send).
              const std::uint64_t sched_us =
                  t0_us + static_cast<std::uint64_t>(plan[next].at * 1e6);
              root = obs::span_root("request", plan[next].seq + 1, sched_us);
              obs::ActiveSpan queue =
                  obs::span_begin("client.queue", root.context(), sched_us);
              obs::span_end(queue);
            }
            const Bytes payload = config.request_of != nullptr
                                      ? config.request_of(plan[next].seq)
                                      : template_payload;
            MessageCodec::encode_message(payload, encoded, root.context());
            frame = &encoded;
          }
          if (conn.alive && conn.socket.send(*frame).is_ok()) {
            conn.pending.push_back(PendingShot{plan[next].at, std::move(root)});
            send_lag.record((now_s - plan[next].at) * 1e6);
            ++result.sent;
            ++outstanding;
          } else {
            ++result.closed_early;
            obs::span_end(root, /*error=*/true);
          }
          ++next;
        }
        const bool all_sent = next == plan.size();
        if (all_sent && outstanding == 0) break;
        if (now_s > config.duration_s + config.grace_s) break;
        const bool due_now = !all_sent && plan[next].at <= elapsed_s();
        tags.clear();
        ready.poll(tags, due_now ? std::chrono::milliseconds(0)
                                 : std::chrono::milliseconds(1));
        for (const std::uint64_t tag : tags) drain_conn(conns[tag]);
      }
      // Graceful teardown; unwatch first — the ReadySet dies with this
      // frame, the connection state may outlive it on the server side.
      for (auto& conn : conns) {
        if (conn.alive) {
          conn.socket.unwatch();
          conn.socket.close();
        }
        // Grace expired with replies still outstanding: close their root
        // spans as errors so the span ledger balances.
        while (conn.pending_head < conn.pending.size()) {
          obs::span_end(conn.pending[conn.pending_head++].span,
                        /*error=*/true);
        }
      }
      result.latency = latency.snapshot();
      result.send_lag = send_lag.snapshot();
    });
  }
  for (auto& t : threads) t.join();
  report.elapsed_s = elapsed_s();

  obs::Histogram::Snapshot latency;
  obs::Histogram::Snapshot send_lag;
  for (const DriverResult& result : results) {
    report.sent += result.sent;
    report.received += result.received;
    report.closed_early += result.closed_early;
    latency.merge(result.latency);
    send_lag.merge(result.send_lag);
  }
  report.latency = latency;
  report.rps = report.elapsed_s > 0.0
                   ? static_cast<double>(report.received) / report.elapsed_s
                   : 0.0;
  report.mean_us = latency.mean();
  report.p50_us = latency.quantile(0.50);
  report.p99_us = latency.quantile(0.99);
  report.p999_us = latency.quantile(0.999);
  report.send_lag_p99_us = send_lag.quantile(0.99);
  return report;
}

}  // namespace pdc::net
