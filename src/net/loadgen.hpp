// Open-loop load generator for the simulated fabric.
//
// "Capacity, tail latency and load balancing" are the under-taught
// performance topics PAPERS.md calls out; a server model cannot teach them
// without a workload that stresses it honestly. LoadGen is *open-loop*:
// every request has a scheduled arrival time drawn from a configurable
// arrival curve, and it is sent at that time whether or not earlier
// requests were answered. Latency is measured from the SCHEDULED time, so
// a server that stalls accrues the queueing delay in its tail percentiles
// instead of silently slowing the generator down (the coordinated-omission
// trap of closed-loop harnesses).
//
// Scale: connections are opened with Network::connect_async (no per-
// connection round-trip wait), partitioned across driver threads, and each
// driver multiplexes its partition over one ReadySet — the same readiness
// machinery the event-driven server uses — so 10^5..10^6 concurrent
// connections cost two threads, not two hundred thousand.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/address.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pdc::net {

/// Shape of the request-arrival rate over the run window.
enum class ArrivalCurve {
  kConstant,        // flat rate
  kDiurnal,         // 1 + amplitude * sin(2*pi*x): a day compressed into the window
  kBurst,           // flat baseline with periodic high-rate windows
  kThunderingHerd,  // near-zero baseline; the load arrives in instantaneous spikes
};

struct LoadGenConfig {
  std::size_t connections = 10'000;
  std::size_t requests = 100'000;    // total, spread over the window
  double duration_s = 1.0;           // arrival window length
  ArrivalCurve curve = ArrivalCurve::kConstant;
  double diurnal_amplitude = 0.8;    // kDiurnal rate swing fraction
  int bursts = 4;                    // kBurst: number of high-rate windows
  double burst_height = 8.0;         // kBurst: in-window rate multiplier
  int herds = 2;                     // kThunderingHerd: number of spikes
  std::size_t payload_bytes = 16;
  std::size_t drivers = 2;           // generator threads
  int first_client_host = 1;         // client hosts [first, first + hosts)
  int client_hosts = 1;
  double grace_s = 5.0;              // extra wait for stragglers after the window
  std::uint64_t seed = 0x10ad;       // payload content

  /// Request tracing: mint a root span per request (trace id = request
  /// sequence + 1, backdated to the SCHEDULED send time so queueing is
  /// attributed, with a client.queue child covering schedule -> send) and
  /// embed the context in the frame header. No-op unless a SpanCollector
  /// is running.
  bool trace = false;

  /// Leader routing: before the storm, probe the cluster and follow
  /// redirects until a node claims leadership, then aim every connection
  /// at it. Requires probe_request + redirect_of.
  bool route_to_leader = false;
  std::vector<Address> cluster;      // candidate targets (first is probed first);
                                     // empty = start from the ctor target
  std::size_t max_redirect_hops = 8;
  /// Builds the discovery probe (e.g. "LEADER?" in traced_kv's protocol).
  std::function<Bytes()> probe_request;
  /// Parses a probe reply: an Address to re-probe, nullopt when the
  /// replying node is the leader.
  std::function<std::optional<Address>(const Bytes& reply)> redirect_of;

  /// Per-request payload builder (by global request sequence). Unset =
  /// one seeded constant payload, encoded once and reused (the perf
  /// fast path).
  std::function<Bytes(std::uint64_t seq)> request_of;
};

struct LoadGenReport {
  std::uint64_t connected = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t closed_early = 0;  // requests lost to a closed connection
  double elapsed_s = 0.0;          // first scheduled send → last driver done
  double rps = 0.0;                // received / elapsed_s
  double mean_us = 0.0;            // open-loop latency (scheduled → reply)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double send_lag_p99_us = 0.0;    // scheduled → actually sent (generator health)
  obs::Histogram::Snapshot latency;  // full distribution (exact merge algebra)
  std::uint64_t redirects = 0;     // leader-discovery hops taken
  Address target{};                // where the storm was aimed (the leader
                                   // when route_to_leader found one)
};

class LoadGen {
 public:
  LoadGen(Network& net, Address server) : net_(net), server_(server) {}

  /// Opens the connections, drives the arrival schedule, waits for
  /// stragglers (bounded by grace_s), closes the connections, and reports.
  LoadGenReport run(const LoadGenConfig& config);

  /// The deterministic arrival schedule (seconds from run start, sorted):
  /// inverse-CDF sampling of the curve's normalized rate, request i at
  /// quantile (i+0.5)/requests. Exposed for tests — identical config means
  /// identical schedule, no RNG involved.
  static std::vector<double> arrival_times(const LoadGenConfig& config);

 private:
  Network& net_;
  Address server_;
};

}  // namespace pdc::net
