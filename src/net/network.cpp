#include "net/network.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "testkit/fault_injector.hpp"

namespace pdc::net {

using support::Status;
using support::StatusCode;

namespace {

/// Enqueues the watcher's tag if registered and not already queued.
/// Caller holds the watched endpoint's mutex; ReadySet's own mutex nests
/// inside it (the one watch-side lock order: endpoint mutex → set mutex).
void signal_watch(WatchState& watch) {
  if (watch.set != nullptr && !watch.queued) {
    watch.queued = true;
    watch.set->push(watch.tag);
  }
}

}  // namespace

// ------------------------------------------------------------------ ReadySet

std::size_t ReadySet::poll(std::vector<std::uint64_t>& out,
                           std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, timeout, [&] { return !ready_.empty() || woken_; });
  woken_ = false;
  const std::size_t n = ready_.size();
  if (n != 0) {
    out.insert(out.end(), ready_.begin(), ready_.end());
    ready_.clear();
  }
  return n;
}

void ReadySet::wake() {
  {
    std::scoped_lock lock(mutex_);
    woken_ = true;
  }
  cv_.notify_all();
}

void ReadySet::push(std::uint64_t tag) {
  {
    std::scoped_lock lock(mutex_);
    ready_.push_back(tag);
  }
  cv_.notify_one();
}

// ------------------------------------------------------------ DatagramSocket

DatagramSocket::~DatagramSocket() { net_.unbind_datagram(local_); }

void DatagramSocket::send_to(const Address& to, Bytes payload) {
  net_.send_datagram(local_, to, std::move(payload));
}

void DatagramSocket::deliver(Datagram dgram) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(dgram));
  }
  arrived_.notify_one();
}

support::Result<Datagram> DatagramSocket::recv() {
  std::unique_lock lock(mutex_);
  arrived_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return Status{StatusCode::kClosed, "socket closed"};
  Datagram dgram = std::move(queue_.front());
  queue_.pop_front();
  PDC_OBS_COUNT("pdc.net.received");
  if (host_received_ != nullptr) host_received_->inc();
  obs::wire_accept(dgram.trace, "net.recv",
                   static_cast<std::uint64_t>(dgram.from.host),
                   dgram.payload.size());
  return dgram;
}

support::Result<Datagram> DatagramSocket::recv_for(
    std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  if (!arrived_.wait_for(lock, timeout,
                         [&] { return !queue_.empty() || closed_; })) {
    return Status{StatusCode::kTimeout, "no datagram within timeout"};
  }
  if (queue_.empty()) return Status{StatusCode::kClosed, "socket closed"};
  Datagram dgram = std::move(queue_.front());
  queue_.pop_front();
  PDC_OBS_COUNT("pdc.net.received");
  if (host_received_ != nullptr) host_received_->inc();
  obs::wire_accept(dgram.trace, "net.recv",
                   static_cast<std::uint64_t>(dgram.from.host),
                   dgram.payload.size());
  return dgram;
}

// -------------------------------------------------------------- StreamSocket

Address StreamSocket::peer() const {
  PDC_CHECK(valid());
  return is_a_ ? state_->b : state_->a;
}

Status StreamSocket::send(const Bytes& data) {
  PDC_CHECK(valid());
  {
    std::scoped_lock lock(outbound().mutex);
    if (outbound().closed) {
      return {StatusCode::kClosed, "connection closed"};
    }
  }
  net_->send_stream_bytes(state_, is_a_, data);
  return Status::ok();
}

support::Result<Bytes> StreamSocket::recv(std::size_t max_bytes) {
  PDC_CHECK(valid());
  Half& half = inbound();
  std::unique_lock lock(half.mutex);
  half.arrived.wait(lock, [&] { return half.available() != 0 || half.closed; });
  if (half.available() == 0) {
    return Status{StatusCode::kClosed, "peer closed the connection"};
  }
  const std::size_t n = std::min(max_bytes, half.available());
  const auto first =
      half.buffer.begin() + static_cast<std::ptrdiff_t>(half.head);
  Bytes out(first, first + static_cast<std::ptrdiff_t>(n));
  half.head += n;
  half.compact();
  return out;
}

support::Result<Bytes> StreamSocket::recv_exact(std::size_t n) {
  PDC_CHECK(valid());
  Half& half = inbound();
  std::unique_lock lock(half.mutex);
  half.arrived.wait(lock, [&] { return half.available() >= n || half.closed; });
  if (half.available() < n) {
    return Status{StatusCode::kClosed, "connection closed mid-message"};
  }
  const auto first =
      half.buffer.begin() + static_cast<std::ptrdiff_t>(half.head);
  Bytes out(first, first + static_cast<std::ptrdiff_t>(n));
  half.head += n;
  half.compact();
  return out;
}

StreamSocket::Drained StreamSocket::try_recv_into(Bytes& out) {
  PDC_CHECK(valid());
  Half& half = inbound();
  std::scoped_lock lock(half.mutex);
  Drained drained{half.available(), half.closed};
  if (drained.bytes != 0) {
    out.insert(out.end(),
               half.buffer.begin() + static_cast<std::ptrdiff_t>(half.head),
               half.buffer.end());
    half.buffer.clear();
    half.head = 0;
  }
  return drained;
}

void StreamSocket::watch(ReadySet* set, std::uint64_t tag) {
  PDC_CHECK(valid());
  Half& half = inbound();
  std::scoped_lock lock(half.mutex);
  half.watch.set = set;
  half.watch.tag = tag;
  half.watch.queued = false;
  if (half.available() != 0 || half.closed) signal_watch(half.watch);
}

void StreamSocket::rearm() {
  if (!valid()) return;
  Half& half = inbound();
  std::scoped_lock lock(half.mutex);
  half.watch.queued = false;
  // Data (or the FIN) that raced in while the owner was draining would
  // otherwise be a lost wakeup: re-enqueue immediately.
  if (half.available() != 0 || half.closed) signal_watch(half.watch);
}

void StreamSocket::unwatch() {
  if (!valid()) return;
  Half& half = inbound();
  std::scoped_lock lock(half.mutex);
  half.watch.set = nullptr;
  half.watch.queued = false;
}

void StreamSocket::close() {
  if (!valid()) return;
  net_->close_stream_half(state_, is_a_);
}

void StreamSocket::abort() {
  if (!valid()) return;
  for (Half* half : {&state_->a_to_b, &state_->b_to_a}) {
    {
      std::scoped_lock lock(half->mutex);
      half->closed = true;
      signal_watch(half->watch);
    }
    half->arrived.notify_all();
  }
}

// ------------------------------------------------------------------ Listener

Listener::~Listener() {
  shutdown();
  net_.unbind_listener(local_);
}

support::Result<StreamSocket> Listener::accept() {
  std::unique_lock lock(mutex_);
  arrived_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) return Status{StatusCode::kClosed, "listener shut down"};
  StreamSocket socket = std::move(pending_.front());
  pending_.pop_front();
  return socket;
}

support::Result<StreamSocket> Listener::try_accept() {
  std::scoped_lock lock(mutex_);
  if (pending_.empty()) {
    if (closed_) return Status{StatusCode::kClosed, "listener shut down"};
    return Status{StatusCode::kUnavailable, "no pending connection"};
  }
  StreamSocket socket = std::move(pending_.front());
  pending_.pop_front();
  return socket;
}

void Listener::watch(ReadySet* set, std::uint64_t tag) {
  std::scoped_lock lock(mutex_);
  watch_.set = set;
  watch_.tag = tag;
  watch_.queued = false;
  if (!pending_.empty() || closed_) signal_watch(watch_);
}

void Listener::rearm() {
  std::scoped_lock lock(mutex_);
  watch_.queued = false;
  if (!pending_.empty() || closed_) signal_watch(watch_);
}

void Listener::unwatch() {
  std::scoped_lock lock(mutex_);
  watch_.set = nullptr;
  watch_.queued = false;
}

void Listener::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    closed_ = true;
    signal_watch(watch_);
  }
  arrived_.notify_all();
}

void Listener::deliver(StreamSocket socket) {
  {
    std::scoped_lock lock(mutex_);
    if (closed_) return;  // connection dropped: listener is gone
    pending_.push_back(std::move(socket));
    signal_watch(watch_);
  }
  arrived_.notify_one();
}

// ------------------------------------------------------------------- Network

Network::Network(int hosts, NetConfig config)
    : hosts_(hosts), config_(config), rng_(config.seed),
      dispatcher_([this] { dispatcher_loop(); }) {
  PDC_CHECK(hosts >= 1);
  PDC_CHECK(config.loss >= 0.0 && config.loss < 1.0);
  if constexpr (obs::kObsEnabled) {
    auto& registry = obs::MetricsRegistry::instance();
    host_sent_.reserve(static_cast<std::size_t>(hosts));
    for (int h = 0; h < hosts; ++h) {
      host_sent_.push_back(
          &registry.counter("pdc.net.host_sent", {{"host", std::to_string(h)}}));
    }
  }
}

Network::~Network() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  dispatcher_.join();
}

double Network::now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Network::schedule(std::function<void()> deliver, bool impaired) {
  std::size_t copies = 1;
  double jitter = 0.0;
  {
    std::scoped_lock lock(mutex_);
    if (impaired && injector_) {
      // Injector overrides the NetConfig model: drops/duplicates/delays come
      // from its seeded decision stream; "reordered" packets are held back by
      // reorder_ms so subsequently sent packets overtake them.
      const testkit::FaultDecision decision = injector_->next();
      if (decision.drop) {
        ++dropped_;
        PDC_OBS_COUNT("pdc.net.dropped");
        return;
      }
      copies = decision.copies;
      jitter = decision.extra_delay_ms;
      if (decision.reordered) jitter += injector_->config().reorder_ms;
    } else if (impaired) {
      if (rng_.bernoulli(config_.loss)) {
        ++dropped_;
        PDC_OBS_COUNT("pdc.net.dropped");
        return;
      }
      if (rng_.bernoulli(config_.duplicate)) copies = 2;
      if (config_.jitter_ms > 0.0) jitter = rng_.uniform(0.0, config_.jitter_ms);
    }
    const double due = now() + (config_.latency_ms + jitter) / 1e3;
    for (std::size_t c = 0; c < copies; ++c) {
      events_.push(Event{due, next_seq_++, deliver});
    }
  }
  wake_.notify_all();
}

void Network::dispatcher_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (events_.empty()) {
      wake_.wait(lock, [&] { return stopping_ || !events_.empty(); });
      continue;
    }
    const double due = events_.top().due;
    const double current = now();
    if (current < due) {
      wake_.wait_for(lock, std::chrono::duration<double>(due - current));
      continue;  // re-check: new earlier events or shutdown
    }
    auto deliver = events_.top().deliver;
    events_.pop();
    lock.unlock();
    deliver();  // outside the lock: delivery takes per-socket locks
    lock.lock();
  }
}

std::unique_ptr<DatagramSocket> Network::open_datagram(int host,
                                                       std::uint16_t port) {
  PDC_CHECK(host >= 0 && host < hosts_);
  const Address addr{host, port};
  std::unique_ptr<DatagramSocket> socket(new DatagramSocket(*this, addr));
  std::scoped_lock lock(mutex_);
  PDC_CHECK_MSG(datagram_sockets_.find(addr) == datagram_sockets_.end(),
                "address already bound: " + addr.to_string());
  datagram_sockets_[addr] = socket.get();
  return socket;
}

std::unique_ptr<Listener> Network::listen(int host, std::uint16_t port) {
  PDC_CHECK(host >= 0 && host < hosts_);
  const Address addr{host, port};
  std::unique_ptr<Listener> listener(new Listener(*this, addr));
  std::scoped_lock lock(mutex_);
  PDC_CHECK_MSG(listeners_.find(addr) == listeners_.end(),
                "address already listening: " + addr.to_string());
  listeners_[addr] = listener.get();
  return listener;
}

support::Result<StreamSocket> Network::connect(int from_host,
                                               const Address& to) {
  // The blocking connect is the async one plus a one-RTT latch.
  struct Sync {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    support::Result<StreamSocket> result =
        Status{StatusCode::kUnavailable, "connect pending"};
  };
  auto sync = std::make_shared<Sync>();
  connect_async(from_host, to, [sync](support::Result<StreamSocket> result) {
    std::scoped_lock lock(sync->mutex);
    sync->result = std::move(result);
    sync->done = true;
    // Notify while holding the lock: the waiter's stack (and with it the
    // shared_ptr's other owner) may unwind the instant done flips.
    sync->cv.notify_one();
  });
  std::unique_lock lock(sync->mutex);
  sync->cv.wait(lock, [&] { return sync->done; });
  return std::move(sync->result);
}

void Network::connect_async(
    int from_host, const Address& to,
    std::function<void(support::Result<StreamSocket>)> done) {
  PDC_CHECK(from_host >= 0 && from_host < hosts_);
  auto state = std::make_shared<StreamSocket::ConnState>();
  bool missing = false;
  {
    std::scoped_lock lock(mutex_);
    missing = listeners_.find(to) == listeners_.end();
    if (!missing) state->a = Address{from_host, next_ephemeral_++};
  }
  if (missing) {
    // No listener now means no SYN to send; report inline (the only case
    // where `done` runs on the caller's thread).
    done(Status{StatusCode::kNotFound, "nothing listening at " + to.to_string()});
    return;
  }
  state->b = to;
  StreamSocket client(this, state, /*is_a=*/true);
  StreamSocket server(this, state, /*is_a=*/false);
  // SYN travels one latency; the handshake completes when the listener
  // receives its endpoint (abstracted two-way handshake).
  schedule(
      [this, to, client = std::move(client), server = std::move(server),
       done = std::move(done)]() mutable {
        bool delivered = false;
        {
          std::scoped_lock net_lock(mutex_);
          auto it = listeners_.find(to);
          if (it != listeners_.end()) {
            // Listener delivery only takes its own mutex (no lock-order
            // issue nesting inside the net mutex).
            it->second->deliver(std::move(server));
            delivered = true;
          }
        }
        if (delivered) {
          done(std::move(client));
        } else {
          done(Status{StatusCode::kNotFound,
                      "listener shut down before the SYN arrived"});
        }
      },
      /*impaired=*/false);
}

std::uint64_t Network::dropped() const {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

void Network::set_fault_injector(
    std::shared_ptr<testkit::FaultInjector> injector) {
  std::scoped_lock lock(mutex_);
  injector_ = std::move(injector);
}

void Network::unbind_datagram(const Address& addr) {
  std::scoped_lock lock(mutex_);
  datagram_sockets_.erase(addr);
}

void Network::unbind_listener(const Address& addr) {
  std::scoped_lock lock(mutex_);
  listeners_.erase(addr);
}

void Network::send_datagram(const Address& from, const Address& to,
                            Bytes payload) {
  PDC_OBS_COUNT("pdc.net.sent");
  PDC_OBS_COUNT("pdc.net.sent_bytes", payload.size());
  if (!host_sent_.empty() && from.host >= 0 && from.host < hosts_) {
    host_sent_[static_cast<std::size_t>(from.host)]->inc();
  }
  // Captured on the sending thread (not the dispatcher) so the flow arrow
  // originates inside the sender's span.
  const obs::WireTrace trace = obs::wire_capture(
      "net.send", static_cast<std::uint64_t>(to.host), payload.size());
  schedule(
      [this, from, to, trace, payload = std::move(payload)]() mutable {
        // Deliver while holding the net mutex so the socket cannot be
        // destroyed (its destructor unbinds under the same mutex). The
        // socket's own mutex nests inside the net mutex — the one global
        // lock order in this module.
        std::scoped_lock lock(mutex_);
        auto it = datagram_sockets_.find(to);
        if (it == datagram_sockets_.end()) return;  // no receiver: dropped
        it->second->deliver(Datagram{from, std::move(payload), trace});
      },
      /*impaired=*/true);
}

double Network::stream_impairment_ms() {
  if (!config_.impair_streams) return 0.0;
  if (injector_) {
    // Reliability is a service: a chunk the injector would drop or reorder
    // is "retransmitted" instead — it arrives late by reorder_ms, never out
    // of order (the due-time clamp in send_stream_bytes). Totals stay
    // deterministic across thread interleavings because every consultation
    // draws the same number of values from the seeded stream.
    const testkit::FaultDecision decision = injector_->next();
    double extra = decision.extra_delay_ms;
    if (decision.drop || decision.reordered) {
      extra += injector_->config().reorder_ms;
    }
    return extra;
  }
  if (config_.jitter_ms > 0.0) return rng_.uniform(0.0, config_.jitter_ms);
  return 0.0;
}

void Network::send_stream_bytes(
    const std::shared_ptr<StreamSocket::ConnState>& state, bool from_a,
    Bytes data) {
  {
    std::scoped_lock lock(mutex_);
    const double extra_ms = stream_impairment_ms();
    // FIFO clamp: a chunk delayed less than its predecessor would overtake
    // it in the priority queue; pinning each due time at or after the
    // previous one keeps the byte stream in order under any impairment.
    double& last_due = from_a ? state->a_to_b_due : state->b_to_a_due;
    const double due =
        std::max(now() + (config_.latency_ms + extra_ms) / 1e3, last_due);
    last_due = due;
    events_.push(Event{due, next_seq_++, [state, from_a,
                                          data = std::move(data)] {
                         auto& half = from_a ? state->a_to_b : state->b_to_a;
                         {
                           std::scoped_lock half_lock(half.mutex);
                           if (half.closed) return;
                           half.buffer.insert(half.buffer.end(), data.begin(),
                                              data.end());
                           signal_watch(half.watch);
                         }
                         half.arrived.notify_all();
                       }});
  }
  wake_.notify_all();
}

void Network::close_stream_half(
    const std::shared_ptr<StreamSocket::ConnState>& state, bool from_a) {
  {
    std::scoped_lock lock(mutex_);
    // Same clamp as data: the FIN must not overtake bytes still in flight.
    double& last_due = from_a ? state->a_to_b_due : state->b_to_a_due;
    const double due = std::max(now() + config_.latency_ms / 1e3, last_due);
    last_due = due;
    events_.push(Event{due, next_seq_++, [state, from_a] {
                         auto& half = from_a ? state->a_to_b : state->b_to_a;
                         {
                           std::scoped_lock half_lock(half.mutex);
                           half.closed = true;
                           signal_watch(half.watch);
                         }
                         half.arrived.notify_all();
                       }});
  }
  wake_.notify_all();
}

}  // namespace pdc::net
