// Integrity primitives for the network-security teaching unit.
//
// The RIT course covers "network protocols and security" at concept level
// (paper §IV-C). These are *educational* implementations of the ideas —
// error-detecting checksums, keyed integrity tags, and a toy stream
// cipher — NOT cryptographically secure primitives; real systems use
// vetted libraries. Tests demonstrate both the guarantees and the
// limitations (e.g. checksums catch corruption but not deliberate
// modification without a key).
#pragma once

#include <cstdint>
#include <string>

#include "net/address.hpp"

namespace pdc::net {

/// Fletcher-16 checksum: catches the bit errors a lossy link introduces.
std::uint16_t fletcher16(const Bytes& data);

/// Pointer-range overload for zero-copy framing: checksums a payload view
/// inside a larger receive buffer without materializing a Bytes.
std::uint16_t fletcher16(const std::byte* data, std::size_t size);

/// FNV-1a 64-bit hash (non-cryptographic).
std::uint64_t fnv1a(const Bytes& data);

/// Keyed integrity tag: FNV-1a over key || data || key (an HMAC-shaped
/// construction for teaching the *concept* of authenticated messages).
std::uint64_t keyed_tag(std::uint64_t key, const Bytes& data);

/// Verifies a tag in constant structure (comparison is not timing-hardened;
/// see the header note).
bool verify_tag(std::uint64_t key, const Bytes& data, std::uint64_t tag);

/// Toy stream cipher: XOR with a SplitMix64 keystream. Symmetric —
/// applying it twice with the same key restores the plaintext.
/// Demonstrates confidentiality as a layer concept only.
Bytes xor_cipher(std::uint64_t key, const Bytes& data);

}  // namespace pdc::net
