#include "net/framing.hpp"

#include "net/checksum.hpp"
#include "support/check.hpp"

namespace pdc::net {

using support::Status;
using support::StatusCode;

namespace {

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>(v >> 8));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const Bytes& in, std::size_t at) {
  return static_cast<std::uint16_t>(static_cast<unsigned>(in[at]) |
                                    (static_cast<unsigned>(in[at + 1]) << 8));
}

std::uint32_t get_u32(const Bytes& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64(const Bytes& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

void MessageCodec::encode_message(const Bytes& payload, Bytes& wire) {
  PDC_CHECK_MSG(payload.size() <= kMaxMessage, "message exceeds kMaxMessage");
  wire.reserve(wire.size() + kHeaderBytes + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  put_u16(wire, fletcher16(payload));
  wire.insert(wire.end(), payload.begin(), payload.end());
}

void MessageCodec::encode_message(const Bytes& payload, Bytes& wire,
                                  obs::SpanContext trace) {
  if (!trace.valid()) {
    encode_message(payload, wire);
    return;
  }
  PDC_CHECK_MSG(payload.size() <= kMaxMessage, "message exceeds kMaxMessage");
  wire.reserve(wire.size() + kHeaderBytes + kTraceHeaderBytes + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(payload.size()) | kTraceFlag);
  put_u16(wire, fletcher16(payload));
  put_u64(wire, trace.trace_id);
  put_u64(wire, trace.span_id);
  wire.insert(wire.end(), payload.begin(), payload.end());
}

Status MessageCodec::send_message(StreamSocket& socket, const Bytes& payload) {
  Bytes wire;
  encode_message(payload, wire);
  return socket.send(wire);
}

Status MessageCodec::send_message(StreamSocket& socket, const Bytes& payload,
                                  obs::SpanContext trace) {
  Bytes wire;
  encode_message(payload, wire, trace);
  return socket.send(wire);
}

namespace {

MessageCodec::Scan scan_core(const Bytes& buffer, std::size_t& offset,
                             BytesView& out, obs::SpanContext* trace) {
  using Scan = MessageCodec::Scan;
  const std::size_t avail = buffer.size() - offset;
  if (avail < MessageCodec::kHeaderBytes) return Scan::kNeedMore;
  const std::uint32_t word = get_u32(buffer, offset);
  const bool traced = (word & MessageCodec::kTraceFlag) != 0;
  const std::uint32_t length = word & ~MessageCodec::kTraceFlag;
  if (length > MessageCodec::kMaxMessage) return Scan::kCorrupt;
  const std::size_t header =
      MessageCodec::kHeaderBytes +
      (traced ? MessageCodec::kTraceHeaderBytes : 0);
  if (avail < header + length) return Scan::kNeedMore;
  const std::uint16_t checksum = get_u16(buffer, offset + 4);
  const std::byte* payload = buffer.data() + offset + header;
  if (fletcher16(payload, length) != checksum) return Scan::kCorrupt;
  if (trace != nullptr) {
    *trace = obs::SpanContext{};
    if (traced) {
      trace->trace_id = get_u64(buffer, offset + MessageCodec::kHeaderBytes);
      trace->span_id = get_u64(buffer, offset + MessageCodec::kHeaderBytes + 8);
    }
  }
  out = BytesView{payload, length};
  offset += header + length;
  return Scan::kFrame;
}

}  // namespace

MessageCodec::Scan MessageCodec::scan_message(const Bytes& buffer,
                                              std::size_t& offset,
                                              BytesView& out) {
  return scan_core(buffer, offset, out, nullptr);
}

MessageCodec::Scan MessageCodec::scan_message(const Bytes& buffer,
                                              std::size_t& offset,
                                              BytesView& out,
                                              obs::SpanContext& trace) {
  return scan_core(buffer, offset, out, &trace);
}

support::Result<Bytes> MessageCodec::recv_message(StreamSocket& socket,
                                                  obs::SpanContext* trace) {
  if (trace != nullptr) *trace = obs::SpanContext{};
  auto header = socket.recv_exact(6);
  if (!header.is_ok()) return header.status();
  const std::uint32_t word = get_u32(header.value(), 0);
  const std::uint32_t length = word & ~kTraceFlag;
  const std::uint16_t checksum = get_u16(header.value(), 4);
  if (length > kMaxMessage) {
    return Status{StatusCode::kAborted, "frame length implausible"};
  }
  if ((word & kTraceFlag) != 0) {
    auto extra = socket.recv_exact(kTraceHeaderBytes);
    if (!extra.is_ok()) return extra.status();
    if (trace != nullptr) {
      trace->trace_id = get_u64(extra.value(), 0);
      trace->span_id = get_u64(extra.value(), 8);
    }
  }
  auto payload = socket.recv_exact(length);
  if (!payload.is_ok()) return payload.status();
  if (fletcher16(payload.value()) != checksum) {
    return Status{StatusCode::kAborted, "checksum mismatch"};
  }
  return payload;
}

Bytes Frame::encode() const {
  Bytes wire;
  wire.push_back(static_cast<std::byte>(type));
  wire.push_back(static_cast<std::byte>(final ? 1 : 0));
  put_u32(wire, seq);
  put_u32(wire, static_cast<std::uint32_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  put_u16(wire, fletcher16(wire));
  return wire;
}

std::optional<Frame> Frame::decode(const Bytes& wire) {
  constexpr std::size_t kHeader = 1 + 1 + 4 + 4;
  if (wire.size() < kHeader + 2) return std::nullopt;
  const std::uint16_t stored = get_u16(wire, wire.size() - 2);
  Bytes body(wire.begin(), wire.end() - 2);
  if (fletcher16(body) != stored) return std::nullopt;

  Frame frame;
  const auto type_raw = static_cast<std::uint8_t>(wire[0]);
  if (type_raw != static_cast<std::uint8_t>(Type::kData) &&
      type_raw != static_cast<std::uint8_t>(Type::kAck)) {
    return std::nullopt;
  }
  frame.type = static_cast<Type>(type_raw);
  frame.final = wire[1] == std::byte{1};
  frame.seq = get_u32(wire, 2);
  const std::uint32_t length = get_u32(wire, 6);
  if (wire.size() != kHeader + length + 2) return std::nullopt;
  frame.payload.assign(wire.begin() + kHeader, wire.end() - 2);
  return frame;
}

}  // namespace pdc::net
