#include "net/arq.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace pdc::net {

using support::Status;
using support::StatusCode;

namespace {

/// Splits `data` into payload chunks of at most `frame_payload` bytes.
/// A zero-byte transfer still produces one (empty, final) frame so the
/// receiver terminates.
std::vector<Frame> make_frames(const Bytes& data, std::size_t frame_payload) {
  PDC_CHECK(frame_payload >= 1);
  std::vector<Frame> frames;
  std::size_t offset = 0;
  do {
    Frame frame;
    frame.type = Frame::Type::kData;
    frame.seq = static_cast<std::uint32_t>(frames.size());
    const std::size_t n = std::min(frame_payload, data.size() - offset);
    frame.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(offset),
                         data.begin() + static_cast<std::ptrdiff_t>(offset + n));
    offset += n;
    frame.final = offset >= data.size();
    frames.push_back(std::move(frame));
  } while (offset < data.size());
  return frames;
}

/// ACK frame carrying `next_expected` (cumulative).
Bytes make_ack(std::uint32_t next_expected) {
  Frame ack;
  ack.type = Frame::Type::kAck;
  ack.seq = next_expected;
  return ack.encode();
}

}  // namespace

support::Result<Bytes> arq_receive(DatagramSocket& socket,
                                   std::chrono::milliseconds idle_timeout,
                                   std::chrono::milliseconds linger) {
  obs::ScopedSpan span("arq.receive");
  Bytes assembled;
  std::uint32_t expected = 0;
  bool finished = false;
  for (;;) {
    auto dgram = socket.recv_for(finished ? linger : idle_timeout);
    if (!dgram.is_ok()) {
      if (finished) return assembled;  // linger elapsed quietly: done
      return Status{StatusCode::kTimeout, "transfer stalled (idle timeout)"};
    }
    const auto frame = Frame::decode(dgram.value().payload);
    if (!frame || frame->type != Frame::Type::kData) continue;  // corrupt/ack

    if (!finished && frame->seq == expected) {
      assembled.insert(assembled.end(), frame->payload.begin(),
                       frame->payload.end());
      ++expected;
      socket.send_to(dgram.value().from, make_ack(expected));
      if (frame->final) finished = true;  // linger to re-ACK a lost final ACK
    } else {
      // Duplicate or out-of-order: re-ACK the cumulative position so the
      // sender can advance (or go back) correctly.
      socket.send_to(dgram.value().from, make_ack(expected));
    }
  }
}

support::Result<ArqStats> arq_send_stop_and_wait(DatagramSocket& socket,
                                                 const Address& dest,
                                                 const Bytes& data,
                                                 const ArqConfig& config) {
  obs::ScopedSpan span("arq.stop_and_wait", data.size());
  const auto frames = make_frames(data, config.frame_payload);
  ArqStats stats;
  support::Stopwatch clock;

  for (std::uint32_t i = 0; i < frames.size(); ++i) {
    const Bytes wire = frames[i].encode();
    std::size_t attempts = 0;
    for (;;) {
      if (attempts > config.max_retries) {
        return Status{StatusCode::kTimeout, "frame " + std::to_string(i) +
                                                " exceeded max retries"};
      }
      socket.send_to(dest, wire);
      ++stats.data_frames_sent;
      PDC_OBS_COUNT("pdc.arq.data_sent");
      if (attempts > 0) {
        ++stats.retransmissions;
        PDC_OBS_COUNT("pdc.arq.retransmit");
      }
      ++attempts;

      // Wait for the cumulative ACK covering this frame.
      const auto dgram = socket.recv_for(config.timeout);
      if (!dgram.is_ok()) {
        ++stats.timeouts;
        PDC_OBS_COUNT("pdc.arq.timeout");
        continue;
      }
      const auto ack = Frame::decode(dgram.value().payload);
      if (ack && ack->type == Frame::Type::kAck) {
        ++stats.acks_received;
        PDC_OBS_COUNT("pdc.arq.ack");
        if (ack->seq >= i + 1) break;
      }
    }
  }

  stats.seconds = clock.elapsed_seconds();
  stats.bytes_delivered = data.size();
  return stats;
}

support::Result<ArqStats> arq_send_go_back_n(DatagramSocket& socket,
                                             const Address& dest,
                                             const ::pdc::net::Bytes& data,
                                             const ArqConfig& config) {
  obs::ScopedSpan span("arq.go_back_n", data.size());
  PDC_CHECK(config.window >= 1);
  const auto frames = make_frames(data, config.frame_payload);
  std::vector<Bytes> wires;
  wires.reserve(frames.size());
  for (const auto& frame : frames) wires.push_back(frame.encode());

  ArqStats stats;
  support::Stopwatch clock;

  std::uint32_t base = 0;                  // oldest unacknowledged
  std::uint32_t next = 0;                  // next frame to transmit
  std::uint32_t highest_sent = 0;          // high-water mark (exclusive)
  std::size_t stalls = 0;                  // consecutive timeouts, no progress

  while (base < frames.size()) {
    // Fill the window.
    while (next < frames.size() &&
           next < base + static_cast<std::uint32_t>(config.window)) {
      socket.send_to(dest, wires[next]);
      ++stats.data_frames_sent;
      PDC_OBS_COUNT("pdc.arq.data_sent");
      if (next < highest_sent) {
        ++stats.retransmissions;
        PDC_OBS_COUNT("pdc.arq.retransmit");
      }
      ++next;
    }
    highest_sent = std::max(highest_sent, next);

    const auto dgram = socket.recv_for(config.timeout);
    if (!dgram.is_ok()) {
      ++stats.timeouts;
      PDC_OBS_COUNT("pdc.arq.timeout");
      if (++stalls > config.max_retries) {
        return Status{StatusCode::kTimeout, "window stalled past max retries"};
      }
      next = base;  // go back N: retransmit the whole window
      continue;
    }
    const auto ack = Frame::decode(dgram.value().payload);
    if (ack && ack->type == Frame::Type::kAck) {
      ++stats.acks_received;
      PDC_OBS_COUNT("pdc.arq.ack");
      if (ack->seq > base) {
        base = ack->seq;
        stalls = 0;
      }
    }
  }

  stats.seconds = clock.elapsed_seconds();
  stats.bytes_delivered = data.size();
  return stats;
}

support::Result<Bytes> arq_receive_selective(DatagramSocket& socket,
                                             std::chrono::milliseconds idle_timeout,
                                             std::chrono::milliseconds linger) {
  obs::ScopedSpan span("arq.receive_selective");
  std::map<std::uint32_t, Bytes> buffered;
  std::optional<std::uint32_t> final_seq;
  bool finished = false;

  auto complete = [&] {
    if (!final_seq) return false;
    for (std::uint32_t s = 0; s <= *final_seq; ++s) {
      if (buffered.find(s) == buffered.end()) return false;
    }
    return true;
  };

  for (;;) {
    auto dgram = socket.recv_for(finished ? linger : idle_timeout);
    if (!dgram.is_ok()) {
      if (!finished) {
        return Status{StatusCode::kTimeout, "transfer stalled (idle timeout)"};
      }
      Bytes assembled;
      for (std::uint32_t s = 0; s <= *final_seq; ++s) {
        assembled.insert(assembled.end(), buffered[s].begin(), buffered[s].end());
      }
      return assembled;
    }
    const auto frame = Frame::decode(dgram.value().payload);
    if (!frame || frame->type != Frame::Type::kData) continue;
    // Per-frame ACK (selective semantics: this exact frame arrived).
    Frame ack;
    ack.type = Frame::Type::kAck;
    ack.seq = frame->seq;
    socket.send_to(dgram.value().from, ack.encode());
    if (!finished) {
      buffered.emplace(frame->seq, frame->payload);
      if (frame->final) final_seq = frame->seq;
      if (complete()) finished = true;  // linger to re-ACK stragglers
    }
  }
}

support::Result<ArqStats> arq_send_selective_repeat(DatagramSocket& socket,
                                                    const Address& dest,
                                                    const Bytes& data,
                                                    const ArqConfig& config) {
  obs::ScopedSpan span("arq.selective_repeat", data.size());
  PDC_CHECK(config.window >= 1);
  const auto frames = make_frames(data, config.frame_payload);
  std::vector<Bytes> wires;
  wires.reserve(frames.size());
  for (const auto& frame : frames) wires.push_back(frame.encode());

  ArqStats stats;
  support::Stopwatch clock;

  const auto timeout_s = std::chrono::duration<double>(config.timeout).count();
  std::vector<bool> acked(frames.size(), false);
  std::vector<bool> ever_sent(frames.size(), false);
  std::vector<double> sent_at(frames.size(), -1.0);
  std::vector<std::size_t> attempts(frames.size(), 0);
  std::uint32_t base = 0;

  while (base < frames.size()) {
    // (Re)transmit anything in the window that is unsent or timed out.
    const double now = clock.elapsed_seconds();
    const std::uint32_t window_end = std::min<std::uint32_t>(
        static_cast<std::uint32_t>(frames.size()),
        base + static_cast<std::uint32_t>(config.window));
    for (std::uint32_t s = base; s < window_end; ++s) {
      if (acked[s]) continue;
      if (sent_at[s] >= 0.0 && now - sent_at[s] < timeout_s) continue;
      if (sent_at[s] >= 0.0) {
        ++stats.retransmissions;  // this specific frame timed out
        ++stats.timeouts;
        PDC_OBS_COUNT("pdc.arq.retransmit");
        PDC_OBS_COUNT("pdc.arq.timeout");
      }
      if (++attempts[s] > config.max_retries) {
        return Status{StatusCode::kTimeout, "frame " + std::to_string(s) +
                                                " exceeded max retries"};
      }
      socket.send_to(dest, wires[s]);
      ever_sent[s] = true;
      sent_at[s] = now;
      ++stats.data_frames_sent;
      PDC_OBS_COUNT("pdc.arq.data_sent");
    }

    // Collect ACKs for a slice of the timeout, then rescan.
    const auto dgram = socket.recv_for(config.timeout / 4 +
                                       std::chrono::milliseconds(1));
    if (!dgram.is_ok()) continue;
    const auto ack = Frame::decode(dgram.value().payload);
    if (ack && ack->type == Frame::Type::kAck && ack->seq < frames.size()) {
      ++stats.acks_received;
      PDC_OBS_COUNT("pdc.arq.ack");
      acked[ack->seq] = true;
      while (base < frames.size() && acked[base]) ++base;
    }
  }

  stats.seconds = clock.elapsed_seconds();
  stats.bytes_delivered = data.size();
  return stats;
}

}  // namespace pdc::net
