// Client-server framework and a small RPC layer over framed streams.
//
// "Client-server programming" appears in Table I under both systems
// programming and networks, and the RIT course builds network application
// programs around it. Server supports three threading models so their
// trade-offs are observable in bench/perf_server and bench/lab_rit_netserver:
//
//  - kThreadPerConnection: classic, simple, O(connections) threads;
//  - kWorkerPool: a fixed pool pulls whole connections from a queue — one
//    blocked connection holds one worker hostage, so concurrency is capped
//    at the pool size;
//  - kEventDriven: a readiness loop over the simulated fabric multiplexes
//    every connection onto a lock-free WorkStealingPool. Connections are
//    sharded by id; each ready batch is drained by a task on the shard,
//    frames are parsed zero-copy against the connection's receive buffer,
//    and handler invocations run inline in the task. This is the model
//    that holds 10^5..10^6 concurrent connections (see docs/serving.md).
//
// The RPC layer adds named-procedure dispatch on top (the "middleware"
// rung of the distributed-systems lecture).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/bounded_queue.hpp"
#include "net/framing.hpp"
#include "net/network.hpp"

namespace pdc::net {

/// Computes the reply for one request (invoked concurrently).
using Handler = std::function<Bytes(const Bytes& request)>;

/// Zero-copy variant: the request is a view into the connection's receive
/// buffer, valid only for the duration of the call. When set, it replaces
/// Handler on every threading model (the event engine never materializes
/// the request; the legacy models pass a view of their owned copy).
using ViewHandler = std::function<Bytes(BytesView request)>;

/// Stream-level interceptor, consulted before `Handler` for every framed
/// request on a connection: return true after writing zero or more framed
/// replies directly to the socket (the connection then resumes normal
/// request-response service), false to fall through to the one-reply
/// Handler. This is how an endpoint pushes multi-frame streams — e.g. the
/// telemetry plane's delta subscriptions — without abandoning the framed
/// request/reply framework.
using RawHandler = std::function<bool(const Bytes& request, StreamSocket& socket)>;

enum class ThreadingModel {
  kThreadPerConnection,  // classic: simple, unbounded threads
  kWorkerPool,           // fixed pool pulls connections from a queue
  kEventDriven,          // readiness loop + sharded lock-free task pool
};

struct ServerConfig {
  ThreadingModel model = ThreadingModel::kThreadPerConnection;
  std::size_t workers = 4;    // pool threads (worker-pool and event-driven)
  std::size_t shards = 0;     // event-driven connection shards (0 = 2x workers)
  RawHandler raw_handler;     // optional; see RawHandler
  ViewHandler view_handler;   // optional; see ViewHandler
};

/// Request-response server: each connection carries a sequence of framed
/// requests, each answered with one framed reply.
class Server {
 public:
  Server(Network& net, int host, std::uint16_t port, Handler handler,
         ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] Address address() const { return listener_->local(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Stops accepting; existing connections finish their current request.
  /// Worker-pool model: connections still queued (accepted but never
  /// picked up by a worker) are drained deterministically — every complete
  /// frame already delivered is answered, then the connection is closed
  /// gracefully — so no accepted connection is silently dropped.
  void stop();

 private:
  struct EventEngine;  // defined in server.cpp (owns the task pool)
  friend struct EventEngine;

  void accept_loop();
  void serve_connection(StreamSocket socket);
  /// Answers every complete frame already buffered on `socket` without
  /// blocking, then closes it gracefully (stop()-time drain).
  void drain_buffered(StreamSocket socket);
  Bytes invoke(BytesView request);

  Network& net_;
  Handler handler_;
  ServerConfig config_;
  std::unique_ptr<Listener> listener_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<bool> stopping_{false};

  concurrency::BoundedQueue<StreamSocket> pending_;  // worker-pool model
  std::vector<std::thread> workers_;
  std::unique_ptr<EventEngine> engine_;  // event-driven model
  std::thread acceptor_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;  // thread-per-connection model
  std::vector<StreamSocket> active_;       // for hard abort on stop()
};

/// Client endpoint issuing framed request-response calls.
class Client {
 public:
  Client(Network& net, int host) : net_(net), host_(host) {}

  /// Opens the connection (one per client).
  support::Status connect(const Address& server);

  /// One round trip; kClosed if the server went away.
  support::Result<Bytes> call(const Bytes& request);
  support::Result<std::string> call_text(const std::string& request);

  void close();

 private:
  Network& net_;
  int host_;
  StreamSocket socket_;
};

// ----------------------------------------------------------------------- RPC

/// Named-procedure server: dispatches `call(name, payload)` to registered
/// handlers. Envelope: u16 name length | name | payload; replies are
/// u8 status | body (body = error text on failure).
class RpcServer {
 public:
  RpcServer(Network& net, int host, std::uint16_t port,
            ServerConfig config = {});

  /// Registers a procedure (before or between calls; thread-safe).
  void register_procedure(const std::string& name, Handler handler);

  [[nodiscard]] Address address() const { return server_->address(); }
  void stop() { server_->stop(); }

 private:
  Bytes dispatch(const Bytes& request);

  std::mutex mutex_;
  std::map<std::string, Handler> procedures_;
  std::unique_ptr<Server> server_;
};

class RpcClient {
 public:
  RpcClient(Network& net, int host) : client_(net, host) {}

  support::Status connect(const Address& server) { return client_.connect(server); }

  /// Calls a remote procedure; kNotFound if it is not registered remotely,
  /// kAborted if the remote handler threw.
  support::Result<Bytes> call(const std::string& name, const Bytes& payload);
  support::Result<std::string> call_text(const std::string& name,
                                         const std::string& payload);

 private:
  Client client_;
};

}  // namespace pdc::net
