// Message framing over byte streams, and the datagram frame format used by
// the ARQ protocols.
//
// "Application protocol design" in the RIT course starts here: a byte
// stream has no message boundaries, so applications add them. The stream
// codec is length-prefix + Fletcher checksum; the datagram frame adds the
// type/sequence header ARQ needs.
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.hpp"
#include "net/network.hpp"
#include "support/status.hpp"

namespace pdc::net {

/// Non-owning view of a message payload parsed in place inside a
/// connection's receive buffer (zero-copy framing). Valid only until the
/// buffer is next mutated — consume or copy before draining again.
struct BytesView {
  const std::byte* data = nullptr;
  std::size_t size = 0;

  [[nodiscard]] Bytes to_owned() const { return Bytes(data, data + size); }
};

/// Length-prefixed, checksummed message framing over a StreamSocket.
///
/// Wire format: u32 length (LE) | u16 fletcher16 | payload.
class MessageCodec {
 public:
  static constexpr std::size_t kMaxMessage = 16 * 1024 * 1024;
  static constexpr std::size_t kHeaderBytes = 6;

  /// Sends one framed message (header and payload in one buffer — one
  /// socket send, one fabric event).
  static support::Status send_message(StreamSocket& socket, const Bytes& payload);

  /// Appends the full wire frame (header + payload) for `payload` to
  /// `wire`. Lets callers batch several frames into one send.
  static void encode_message(const Bytes& payload, Bytes& wire);

  /// Receives one framed message; kAborted on checksum mismatch, kClosed
  /// when the peer closed cleanly between messages.
  static support::Result<Bytes> recv_message(StreamSocket& socket);

  enum class Scan {
    kFrame,     // a complete frame was parsed; `out` points into `buffer`
    kNeedMore,  // the buffer holds only a partial frame
    kCorrupt,   // implausible length or checksum mismatch — poison the stream
  };

  /// Zero-copy parse of the next frame at `offset` in a receive buffer:
  /// on kFrame, `out` views the payload *in place* and `offset` advances
  /// past the frame. The view dies with the next mutation of `buffer`.
  static Scan scan_message(const Bytes& buffer, std::size_t& offset,
                           BytesView& out);
};

/// Datagram frame used by the ARQ implementations.
struct Frame {
  enum class Type : std::uint8_t { kData = 1, kAck = 2 };

  Type type = Type::kData;
  std::uint32_t seq = 0;
  bool final = false;  // last data frame of the transfer
  Bytes payload;

  /// Serializes with a trailing Fletcher-16 over everything.
  [[nodiscard]] Bytes encode() const;

  /// Parses; nullopt on truncation or checksum failure.
  static std::optional<Frame> decode(const Bytes& wire);
};

}  // namespace pdc::net
