// Message framing over byte streams, and the datagram frame format used by
// the ARQ protocols.
//
// "Application protocol design" in the RIT course starts here: a byte
// stream has no message boundaries, so applications add them. The stream
// codec is length-prefix + Fletcher checksum; the datagram frame adds the
// type/sequence header ARQ needs.
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.hpp"
#include "net/network.hpp"
#include "obs/span.hpp"
#include "support/status.hpp"

namespace pdc::net {

/// Non-owning view of a message payload parsed in place inside a
/// connection's receive buffer (zero-copy framing). Valid only until the
/// buffer is next mutated — consume or copy before draining again.
struct BytesView {
  const std::byte* data = nullptr;
  std::size_t size = 0;

  [[nodiscard]] Bytes to_owned() const { return Bytes(data, data + size); }
};

/// Length-prefixed, checksummed message framing over a StreamSocket.
///
/// Wire format: u32 length (LE) | u16 fletcher16 | payload. The length
/// word's top bit (kTraceFlag — kMaxMessage leaves it free) marks a
/// traced frame, which carries a 16-byte trace header (u64 trace id |
/// u64 span id, LE) between the fixed header and the payload. Untraced
/// frames are byte-identical to the pre-tracing format: tracing off
/// costs zero wire bytes and one mask on parse.
class MessageCodec {
 public:
  static constexpr std::size_t kMaxMessage = 16 * 1024 * 1024;
  static constexpr std::size_t kHeaderBytes = 6;
  static constexpr std::uint32_t kTraceFlag = 0x8000'0000u;
  static constexpr std::size_t kTraceHeaderBytes = 16;

  /// Sends one framed message (header and payload in one buffer — one
  /// socket send, one fabric event).
  static support::Status send_message(StreamSocket& socket, const Bytes& payload);

  /// Traced variant: embeds `trace` in the frame header when valid
  /// (identical to the plain form when not).
  static support::Status send_message(StreamSocket& socket,
                                      const Bytes& payload,
                                      obs::SpanContext trace);

  /// Appends the full wire frame (header + payload) for `payload` to
  /// `wire`. Lets callers batch several frames into one send.
  static void encode_message(const Bytes& payload, Bytes& wire);

  /// Traced variant of encode_message.
  static void encode_message(const Bytes& payload, Bytes& wire,
                             obs::SpanContext trace);

  /// Receives one framed message; kAborted on checksum mismatch, kClosed
  /// when the peer closed cleanly between messages. A traced frame's
  /// context lands in `*trace` when non-null (zeroed otherwise).
  static support::Result<Bytes> recv_message(StreamSocket& socket,
                                             obs::SpanContext* trace = nullptr);

  enum class Scan {
    kFrame,     // a complete frame was parsed; `out` points into `buffer`
    kNeedMore,  // the buffer holds only a partial frame
    kCorrupt,   // implausible length or checksum mismatch — poison the stream
  };

  /// Zero-copy parse of the next frame at `offset` in a receive buffer:
  /// on kFrame, `out` views the payload *in place* and `offset` advances
  /// past the frame. The view dies with the next mutation of `buffer`.
  /// A traced frame's header is skipped (context discarded).
  static Scan scan_message(const Bytes& buffer, std::size_t& offset,
                           BytesView& out);

  /// Trace-aware scan: on kFrame, `trace` holds the frame's context
  /// (zeroed for untraced frames).
  static Scan scan_message(const Bytes& buffer, std::size_t& offset,
                           BytesView& out, obs::SpanContext& trace);
};

/// Datagram frame used by the ARQ implementations.
struct Frame {
  enum class Type : std::uint8_t { kData = 1, kAck = 2 };

  Type type = Type::kData;
  std::uint32_t seq = 0;
  bool final = false;  // last data frame of the transfer
  Bytes payload;

  /// Serializes with a trailing Fletcher-16 over everything.
  [[nodiscard]] Bytes encode() const;

  /// Parses; nullopt on truncation or checksum failure.
  static std::optional<Frame> decode(const Bytes& wire);
};

}  // namespace pdc::net
