// Message framing over byte streams, and the datagram frame format used by
// the ARQ protocols.
//
// "Application protocol design" in the RIT course starts here: a byte
// stream has no message boundaries, so applications add them. The stream
// codec is length-prefix + Fletcher checksum; the datagram frame adds the
// type/sequence header ARQ needs.
#pragma once

#include <cstdint>
#include <optional>

#include "net/address.hpp"
#include "net/network.hpp"
#include "support/status.hpp"

namespace pdc::net {

/// Length-prefixed, checksummed message framing over a StreamSocket.
///
/// Wire format: u32 length (LE) | u16 fletcher16 | payload.
class MessageCodec {
 public:
  static constexpr std::size_t kMaxMessage = 16 * 1024 * 1024;

  /// Sends one framed message.
  static support::Status send_message(StreamSocket& socket, const Bytes& payload);

  /// Receives one framed message; kAborted on checksum mismatch, kClosed
  /// when the peer closed cleanly between messages.
  static support::Result<Bytes> recv_message(StreamSocket& socket);
};

/// Datagram frame used by the ARQ implementations.
struct Frame {
  enum class Type : std::uint8_t { kData = 1, kAck = 2 };

  Type type = Type::kData;
  std::uint32_t seq = 0;
  bool final = false;  // last data frame of the transfer
  Bytes payload;

  /// Serializes with a trailing Fletcher-16 over everything.
  [[nodiscard]] Bytes encode() const;

  /// Parses; nullopt on truncation or checksum failure.
  static std::optional<Frame> decode(const Bytes& wire);
};

}  // namespace pdc::net
