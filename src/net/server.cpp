#include "net/server.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/obs.hpp"
#include "parallel/work_stealing.hpp"
#include "support/check.hpp"

namespace pdc::net {

using support::Status;
using support::StatusCode;

// ----------------------------------------------------------------EventEngine
//
// The event-driven model. One acceptor thread runs the readiness loop:
// it polls a ReadySet shared by the listener (tag 0) and every connection
// (tag = connection id), so a single poll() carries an entire batch of
// ready endpoints. Connections are sharded by id; the loop routes each
// ready id into its shard's run queue and schedules at most one drain
// task per shard on the work-stealing pool (the `scheduled` flag). The
// drain task swap-takes the queue, drains each connection non-blockingly,
// parses frames zero-copy in place, runs the handler inline, and re-arms
// the socket — rearm() re-enqueues the tag if bytes raced in, so no
// wakeup is lost. Per-connection processing is serialized by construction
// (one drain task per shard), so connection state needs no lock beyond
// the shard map's.
struct Server::EventEngine {
  static constexpr std::uint64_t kListenerTag = 0;

  struct Conn {
    StreamSocket socket;
    Bytes rx;             // receive buffer; frames parsed in place
    std::size_t off = 0;  // parse offset into rx
  };

  struct alignas(64) Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Conn> conns;
    std::vector<std::uint64_t> ready;  // ids with pending readiness
    std::atomic<bool> scheduled{false};
    // pdc.server.inflight{shard=}: readiness entries routed but not yet
    // drained — the "queued in shard ready-list" depth per shard.
    obs::Gauge* inflight = nullptr;
  };

  explicit EventEngine(Server& server)
      : server(server),
        pool(server.config_.workers),
        shard_count(server.config_.shards != 0 ? server.config_.shards
                                               : 2 * server.config_.workers) {
    shards.reserve(shard_count);
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards.push_back(std::make_unique<Shard>());
      if constexpr (obs::kObsEnabled) {
        shards.back()->inflight = &obs::MetricsRegistry::instance().gauge(
            "pdc.server.inflight", {{"shard", std::to_string(i)}});
      }
    }
    server.listener_->watch(&ready_set, kListenerTag);
  }

  Shard& shard_of(std::uint64_t id) { return *shards[id % shard_count]; }

  /// Readiness loop (runs on the Server's acceptor thread).
  void loop() {
    std::vector<std::uint64_t> tags;
    while (!stopping.load(std::memory_order_acquire)) {
      tags.clear();
      ready_set.poll(tags, std::chrono::milliseconds(50));
      if (stopping.load(std::memory_order_acquire)) return;
      if (tags.empty()) continue;
      PDC_OBS_HIST("pdc.server.ready_batch",
                   static_cast<std::uint64_t>(tags.size()));
      for (const std::uint64_t tag : tags) {
        if (tag == kListenerTag) {
          accept_burst();
        } else {
          route(tag);
        }
      }
    }
  }

  /// Drains the whole accept backlog in one pass.
  void accept_burst() {
    for (;;) {
      auto accepted = server.listener_->try_accept();
      if (!accepted.is_ok()) break;
      StreamSocket socket = std::move(accepted).value();
      if (server.stopping_.load(std::memory_order_acquire)) {
        socket.abort();
        continue;
      }
      const std::uint64_t id = next_id++;
      Shard& shard = shard_of(id);
      {
        std::scoped_lock lock(shard.mutex);
        shard.conns[id].socket = socket;
      }
      PDC_OBS_COUNT("pdc.server.accepted");
      PDC_OBS_GAUGE_ADD("pdc.server.conns", 1);
      // Registering after the shard insert: if data already arrived the
      // watch signals immediately and route() finds the connection.
      socket.watch(&ready_set, id);
    }
    server.listener_->rearm();
  }

  void route(std::uint64_t id) {
    Shard& shard = shard_of(id);
    {
      std::scoped_lock lock(shard.mutex);
      // A tag can outlive its connection (closed while the tag sat in the
      // ready queue); integers don't dangle, just drop it.
      if (shard.conns.find(id) == shard.conns.end()) return;
      shard.ready.push_back(id);
      if (shard.inflight != nullptr) shard.inflight->add(1);
    }
    schedule(shard);
  }

  void schedule(Shard& shard) {
    // One in-flight drain task per shard: the flag is cleared only when
    // the run queue is observed empty under the shard lock, so a route()
    // racing that clear either lands in the still-running drain's next
    // sweep or wins this exchange and schedules a fresh task.
    if (!shard.scheduled.exchange(true, std::memory_order_acq_rel)) {
      pool.spawn([this, &shard] { drain(shard); });
    }
  }

  void drain(Shard& shard) {
    std::vector<std::uint64_t> batch;
    for (;;) {
      batch.clear();
      {
        std::scoped_lock lock(shard.mutex);
        batch.swap(shard.ready);
      }
      PDC_OBS_HIST("pdc.server.shard_batch",
                   static_cast<std::uint64_t>(batch.size()));
      if (shard.inflight != nullptr && !batch.empty()) {
        shard.inflight->sub(static_cast<std::int64_t>(batch.size()));
      }
      for (const std::uint64_t id : batch) {
        Conn* conn = nullptr;
        {
          std::scoped_lock lock(shard.mutex);
          auto it = shard.conns.find(id);
          // unordered_map references are stable across other keys'
          // inserts/erases; this id is only erased below, by this task.
          if (it != shard.conns.end()) conn = &it->second;
        }
        if (conn == nullptr) continue;
        if (process(*conn)) {
          conn->socket.rearm();
        } else {
          conn->socket.unwatch();
          conn->socket.close();
          {
            std::scoped_lock lock(shard.mutex);
            shard.conns.erase(id);
          }
          PDC_OBS_GAUGE_SUB("pdc.server.conns", 1);
        }
      }
      {
        std::scoped_lock lock(shard.mutex);
        if (shard.ready.empty()) {
          shard.scheduled.store(false, std::memory_order_release);
          return;
        }
      }
    }
  }

  /// Drains and serves one connection; false when it should be closed.
  bool process(Conn& conn) {
    const auto drained = conn.socket.try_recv_into(conn.rx);
    bool alive = true;
    for (;;) {
      BytesView request;
      obs::SpanContext trace;
      const auto scan =
          MessageCodec::scan_message(conn.rx, conn.off, request, trace);
      if (scan == MessageCodec::Scan::kNeedMore) break;
      if (scan == MessageCodec::Scan::kCorrupt) {
        alive = false;
        break;
      }
      PDC_OBS_COUNT("pdc.server.frames");
      if (!dispatch(conn, request, trace)) {
        alive = false;
        break;
      }
    }
    if (conn.off == conn.rx.size()) {
      conn.rx.clear();
      conn.off = 0;
    } else if (conn.off >= 4096 && conn.off * 2 >= conn.rx.size()) {
      conn.rx.erase(conn.rx.begin(),
                    conn.rx.begin() + static_cast<std::ptrdiff_t>(conn.off));
      conn.off = 0;
    }
    // Peer FIN: frames ahead of it were answered above; a trailing partial
    // frame can never complete.
    if (drained.closed) alive = false;
    return alive;
  }

  bool dispatch(Conn& conn, BytesView request, obs::SpanContext trace) {
    if (server.config_.raw_handler) {
      const Bytes owned = request.to_owned();
      if (server.config_.raw_handler(owned, conn.socket)) {
        server.requests_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    // The handler runs as a child span of the client's request: the
    // bracket covers invoke + reply send, and the ambient scope lets
    // anything the handler submits downstream inherit the trace.
    obs::SpanGuard span("server.drain", trace);
    const Bytes reply = server.invoke(request);
    server.requests_.fetch_add(1, std::memory_order_relaxed);
    return MessageCodec::send_message(conn.socket, reply).is_ok();
  }

  /// stop() path: called after the loop thread joined. Aborts every live
  /// connection, then quiesces the pool so no drain task outlives us.
  /// Every watch is removed first — the client half of a connection can
  /// outlive this engine, and a late delivery must not signal a destroyed
  /// ReadySet.
  void shutdown() {
    server.listener_->unwatch();
    for (auto& shard : shards) {
      std::scoped_lock lock(shard->mutex);
      for (auto& [id, conn] : shard->conns) {
        conn.socket.unwatch();
        conn.socket.abort();
      }
    }
    pool.wait_idle();
    for (auto& shard : shards) {
      std::scoped_lock lock(shard->mutex);
      PDC_OBS_GAUGE_SUB("pdc.server.conns",
                        static_cast<std::int64_t>(shard->conns.size()));
      shard->conns.clear();
    }
  }

  Server& server;
  ReadySet ready_set;
  parallel::WorkStealingPool pool;
  std::size_t shard_count;
  std::vector<std::unique_ptr<Shard>> shards;
  std::uint64_t next_id = 1;  // acceptor thread only; 0 is the listener
  std::atomic<bool> stopping{false};
};

// --------------------------------------------------------------------- Server

Server::Server(Network& net, int host, std::uint16_t port, Handler handler,
               ServerConfig config)
    : net_(net), handler_(std::move(handler)), config_(std::move(config)),
      listener_(net.listen(host, port)), pending_(1024) {
  PDC_CHECK(handler_ != nullptr || config_.view_handler != nullptr);
  if (config_.model == ThreadingModel::kWorkerPool) {
    PDC_CHECK(config_.workers >= 1);
    for (std::size_t w = 0; w < config_.workers; ++w) {
      workers_.emplace_back([this] {
        for (;;) {
          auto socket = pending_.pop();
          if (!socket.is_ok()) break;
          serve_connection(std::move(socket).value());
        }
      });
    }
  } else if (config_.model == ThreadingModel::kEventDriven) {
    PDC_CHECK(config_.workers >= 1);
    engine_ = std::make_unique<EventEngine>(*this);
  }
  acceptor_ = std::thread([this] {
    if (engine_) {
      engine_->loop();
    } else {
      accept_loop();
    }
  });
}

Server::~Server() { stop(); }

Bytes Server::invoke(BytesView request) {
  if (config_.view_handler) return config_.view_handler(request);
  return handler_(request.to_owned());
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  listener_->shutdown();

  if (engine_) {
    engine_->stopping.store(true, std::memory_order_release);
    engine_->ready_set.wake();
    if (acceptor_.joinable()) acceptor_.join();
    engine_->shutdown();
    return;
  }

  pending_.close();
  // Claim every queued-but-unserved connection before the hard abort: each
  // is served from its buffer and closed *gracefully* below, so its replies
  // actually reach the client (an abort would kill them in flight).
  std::vector<StreamSocket> queued;
  for (;;) {
    auto socket = pending_.try_pop();
    if (!socket.is_ok()) break;
    queued.push_back(std::move(socket).value());
  }
  // Hard-abort live connections so handler threads blocked in recv wake up
  // even when the client never closed its end — skipping the claimed ones.
  {
    std::scoped_lock lock(conn_mutex_);
    for (auto& socket : active_) {
      const bool claimed =
          std::any_of(queued.begin(), queued.end(),
                      [&](const StreamSocket& q) { return q.is_same(socket); });
      if (!claimed) socket.abort();
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& socket : queued) drain_buffered(std::move(socket));
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<std::thread> connections;
  {
    std::scoped_lock lock(conn_mutex_);
    connections.swap(conn_threads_);
  }
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted.is_ok()) return;  // shut down
    StreamSocket socket = std::move(accepted).value();
    {
      std::scoped_lock lock(conn_mutex_);
      active_.push_back(socket);  // cheap handle copy, for abort on stop
      if (stopping_.load()) {
        socket.abort();
        continue;
      }
      if (config_.model == ThreadingModel::kThreadPerConnection) {
        conn_threads_.emplace_back(
            [this, s = std::move(socket)]() mutable {
              serve_connection(std::move(s));
            });
        continue;
      }
    }
    // Worker pool: parks until a worker picks the connection up.
    (void)pending_.push(std::move(socket));
  }
}

void Server::serve_connection(StreamSocket socket) {
  for (;;) {
    obs::SpanContext trace;
    auto request = MessageCodec::recv_message(socket, &trace);
    if (!request.is_ok()) break;  // closed or corrupt stream
    if (config_.raw_handler && config_.raw_handler(request.value(), socket)) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    obs::SpanGuard span("server.drain", trace);
    const Bytes& owned = request.value();
    Bytes reply = invoke(BytesView{owned.data(), owned.size()});
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!MessageCodec::send_message(socket, reply).is_ok()) break;
  }
  socket.close();
}

void Server::drain_buffered(StreamSocket socket) {
  Bytes rx;
  std::size_t off = 0;
  (void)socket.try_recv_into(rx);
  for (;;) {
    BytesView request;
    obs::SpanContext trace;
    if (MessageCodec::scan_message(rx, off, request, trace) !=
        MessageCodec::Scan::kFrame) {
      break;
    }
    if (config_.raw_handler) {
      const Bytes owned = request.to_owned();
      if (config_.raw_handler(owned, socket)) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    obs::SpanGuard span("server.drain", trace);
    const Bytes reply = invoke(request);
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!MessageCodec::send_message(socket, reply).is_ok()) break;
  }
  socket.close();
}

Status Client::connect(const Address& server) {
  auto socket = net_.connect(host_, server);
  if (!socket.is_ok()) return socket.status();
  socket_ = std::move(socket).value();
  return Status::ok();
}

support::Result<Bytes> Client::call(const Bytes& request) {
  PDC_CHECK_MSG(socket_.valid(), "call before connect");
  if (auto status = MessageCodec::send_message(socket_, request); !status.is_ok()) {
    return status;
  }
  return MessageCodec::recv_message(socket_);
}

support::Result<std::string> Client::call_text(const std::string& request) {
  auto reply = call(to_bytes(request));
  if (!reply.is_ok()) return reply.status();
  return to_string(reply.value());
}

void Client::close() {
  if (socket_.valid()) socket_.close();
}

// ----------------------------------------------------------------------- RPC

namespace {
constexpr std::uint8_t kRpcOk = 0;
constexpr std::uint8_t kRpcNotFound = 1;
constexpr std::uint8_t kRpcError = 2;
}  // namespace

RpcServer::RpcServer(Network& net, int host, std::uint16_t port,
                     ServerConfig config)
    : server_(std::make_unique<Server>(
          net, host, port, [this](const Bytes& req) { return dispatch(req); },
          config)) {}

void RpcServer::register_procedure(const std::string& name, Handler handler) {
  std::scoped_lock lock(mutex_);
  procedures_[name] = std::move(handler);
}

Bytes RpcServer::dispatch(const Bytes& request) {
  auto fail = [](std::uint8_t code, const std::string& text) {
    Bytes reply;
    reply.push_back(static_cast<std::byte>(code));
    const Bytes body = to_bytes(text);
    reply.insert(reply.end(), body.begin(), body.end());
    return reply;
  };
  if (request.size() < 2) return fail(kRpcError, "malformed envelope");
  const std::size_t name_len =
      static_cast<std::size_t>(request[0]) |
      (static_cast<std::size_t>(request[1]) << 8);
  if (request.size() < 2 + name_len) return fail(kRpcError, "malformed envelope");
  const std::string name =
      to_string(Bytes(request.begin() + 2,
                      request.begin() + 2 + static_cast<std::ptrdiff_t>(name_len)));
  Handler handler;
  {
    std::scoped_lock lock(mutex_);
    const auto it = procedures_.find(name);
    if (it == procedures_.end()) {
      return fail(kRpcNotFound, "no procedure '" + name + "'");
    }
    handler = it->second;
  }
  const Bytes payload(request.begin() + 2 + static_cast<std::ptrdiff_t>(name_len),
                      request.end());
  try {
    Bytes body = handler(payload);
    Bytes reply;
    reply.push_back(std::byte{kRpcOk});
    reply.insert(reply.end(), body.begin(), body.end());
    return reply;
  } catch (const std::exception& e) {
    return fail(kRpcError, e.what());
  }
}

support::Result<Bytes> RpcClient::call(const std::string& name,
                                       const Bytes& payload) {
  PDC_CHECK_MSG(name.size() < 65536, "procedure name too long");
  Bytes request;
  request.push_back(static_cast<std::byte>(name.size() & 0xff));
  request.push_back(static_cast<std::byte>(name.size() >> 8));
  const Bytes name_bytes = to_bytes(name);
  request.insert(request.end(), name_bytes.begin(), name_bytes.end());
  request.insert(request.end(), payload.begin(), payload.end());

  auto reply = client_.call(request);
  if (!reply.is_ok()) return reply.status();
  const Bytes& wire = reply.value();
  if (wire.empty()) return Status{StatusCode::kAborted, "empty rpc reply"};
  const auto code = static_cast<std::uint8_t>(wire[0]);
  Bytes body(wire.begin() + 1, wire.end());
  switch (code) {
    case kRpcOk:
      return body;
    case kRpcNotFound:
      return Status{StatusCode::kNotFound, to_string(body)};
    default:
      return Status{StatusCode::kAborted, to_string(body)};
  }
}

support::Result<std::string> RpcClient::call_text(const std::string& name,
                                                  const std::string& payload) {
  auto reply = call(name, to_bytes(payload));
  if (!reply.is_ok()) return reply.status();
  return to_string(reply.value());
}

}  // namespace pdc::net
