#include "net/server.hpp"

#include "support/check.hpp"

namespace pdc::net {

using support::Status;
using support::StatusCode;

Server::Server(Network& net, int host, std::uint16_t port, Handler handler,
               ServerConfig config)
    : net_(net), handler_(std::move(handler)), config_(config),
      listener_(net.listen(host, port)), pending_(1024) {
  PDC_CHECK(handler_ != nullptr);
  if (config_.model == ThreadingModel::kWorkerPool) {
    PDC_CHECK(config_.workers >= 1);
    for (std::size_t w = 0; w < config_.workers; ++w) {
      workers_.emplace_back([this] {
        for (;;) {
          auto socket = pending_.pop();
          if (!socket.is_ok()) break;
          serve_connection(std::move(socket).value());
        }
      });
    }
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  listener_->shutdown();
  pending_.close();
  // Hard-abort live connections so handler threads blocked in recv wake up
  // even when the client never closed its end.
  {
    std::scoped_lock lock(conn_mutex_);
    for (auto& socket : active_) socket.abort();
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::vector<std::thread> connections;
  {
    std::scoped_lock lock(conn_mutex_);
    connections.swap(conn_threads_);
  }
  for (auto& t : connections) {
    if (t.joinable()) t.join();
  }
}

void Server::accept_loop() {
  for (;;) {
    auto accepted = listener_->accept();
    if (!accepted.is_ok()) return;  // shut down
    StreamSocket socket = std::move(accepted).value();
    {
      std::scoped_lock lock(conn_mutex_);
      active_.push_back(socket);  // cheap handle copy, for abort on stop
      if (stopping_.load()) {
        socket.abort();
        continue;
      }
      if (config_.model == ThreadingModel::kThreadPerConnection) {
        conn_threads_.emplace_back(
            [this, s = std::move(socket)]() mutable {
              serve_connection(std::move(s));
            });
        continue;
      }
    }
    // Worker pool: parks until a worker picks the connection up.
    (void)pending_.push(std::move(socket));
  }
}

void Server::serve_connection(StreamSocket socket) {
  for (;;) {
    auto request = MessageCodec::recv_message(socket);
    if (!request.is_ok()) break;  // closed or corrupt stream
    if (config_.raw_handler && config_.raw_handler(request.value(), socket)) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Bytes reply = handler_(request.value());
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (!MessageCodec::send_message(socket, reply).is_ok()) break;
  }
  socket.close();
}

Status Client::connect(const Address& server) {
  auto socket = net_.connect(host_, server);
  if (!socket.is_ok()) return socket.status();
  socket_ = std::move(socket).value();
  return Status::ok();
}

support::Result<Bytes> Client::call(const Bytes& request) {
  PDC_CHECK_MSG(socket_.valid(), "call before connect");
  if (auto status = MessageCodec::send_message(socket_, request); !status.is_ok()) {
    return status;
  }
  return MessageCodec::recv_message(socket_);
}

support::Result<std::string> Client::call_text(const std::string& request) {
  auto reply = call(to_bytes(request));
  if (!reply.is_ok()) return reply.status();
  return to_string(reply.value());
}

void Client::close() {
  if (socket_.valid()) socket_.close();
}

// ----------------------------------------------------------------------- RPC

namespace {
constexpr std::uint8_t kRpcOk = 0;
constexpr std::uint8_t kRpcNotFound = 1;
constexpr std::uint8_t kRpcError = 2;
}  // namespace

RpcServer::RpcServer(Network& net, int host, std::uint16_t port,
                     ServerConfig config)
    : server_(std::make_unique<Server>(
          net, host, port, [this](const Bytes& req) { return dispatch(req); },
          config)) {}

void RpcServer::register_procedure(const std::string& name, Handler handler) {
  std::scoped_lock lock(mutex_);
  procedures_[name] = std::move(handler);
}

Bytes RpcServer::dispatch(const Bytes& request) {
  auto fail = [](std::uint8_t code, const std::string& text) {
    Bytes reply;
    reply.push_back(static_cast<std::byte>(code));
    const Bytes body = to_bytes(text);
    reply.insert(reply.end(), body.begin(), body.end());
    return reply;
  };
  if (request.size() < 2) return fail(kRpcError, "malformed envelope");
  const std::size_t name_len =
      static_cast<std::size_t>(request[0]) |
      (static_cast<std::size_t>(request[1]) << 8);
  if (request.size() < 2 + name_len) return fail(kRpcError, "malformed envelope");
  const std::string name =
      to_string(Bytes(request.begin() + 2,
                      request.begin() + 2 + static_cast<std::ptrdiff_t>(name_len)));
  Handler handler;
  {
    std::scoped_lock lock(mutex_);
    const auto it = procedures_.find(name);
    if (it == procedures_.end()) {
      return fail(kRpcNotFound, "no procedure '" + name + "'");
    }
    handler = it->second;
  }
  const Bytes payload(request.begin() + 2 + static_cast<std::ptrdiff_t>(name_len),
                      request.end());
  try {
    Bytes body = handler(payload);
    Bytes reply;
    reply.push_back(std::byte{kRpcOk});
    reply.insert(reply.end(), body.begin(), body.end());
    return reply;
  } catch (const std::exception& e) {
    return fail(kRpcError, e.what());
  }
}

support::Result<Bytes> RpcClient::call(const std::string& name,
                                       const Bytes& payload) {
  PDC_CHECK_MSG(name.size() < 65536, "procedure name too long");
  Bytes request;
  request.push_back(static_cast<std::byte>(name.size() & 0xff));
  request.push_back(static_cast<std::byte>(name.size() >> 8));
  const Bytes name_bytes = to_bytes(name);
  request.insert(request.end(), name_bytes.begin(), name_bytes.end());
  request.insert(request.end(), payload.begin(), payload.end());

  auto reply = client_.call(request);
  if (!reply.is_ok()) return reply.status();
  const Bytes& wire = reply.value();
  if (wire.empty()) return Status{StatusCode::kAborted, "empty rpc reply"};
  const auto code = static_cast<std::uint8_t>(wire[0]);
  Bytes body(wire.begin() + 1, wire.end());
  switch (code) {
    case kRpcOk:
      return body;
    case kRpcNotFound:
      return Status{StatusCode::kNotFound, to_string(body)};
    default:
      return Status{StatusCode::kAborted, to_string(body)};
  }
}

support::Result<std::string> RpcClient::call_text(const std::string& name,
                                                  const std::string& payload) {
  auto reply = call(name, to_bytes(payload));
  if (!reply.is_ok()) return reply.status();
  return to_string(reply.value());
}

}  // namespace pdc::net
