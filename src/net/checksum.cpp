#include "net/checksum.hpp"

#include "support/rng.hpp"

namespace pdc::net {

std::uint16_t fletcher16(const std::byte* data, std::size_t size) {
  std::uint32_t sum1 = 0, sum2 = 0;
  for (std::size_t i = 0; i < size; ++i) {
    sum1 = (sum1 + static_cast<std::uint32_t>(data[i])) % 255;
    sum2 = (sum2 + sum1) % 255;
  }
  return static_cast<std::uint16_t>((sum2 << 8) | sum1);
}

std::uint16_t fletcher16(const Bytes& data) {
  return fletcher16(data.data(), data.size());
}

std::uint64_t fnv1a(const Bytes& data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t keyed_tag(std::uint64_t key, const Bytes& data) {
  Bytes keyed;
  keyed.reserve(data.size() + 16);
  for (int i = 0; i < 8; ++i) {
    keyed.push_back(static_cast<std::byte>(key >> (8 * i)));
  }
  keyed.insert(keyed.end(), data.begin(), data.end());
  for (int i = 7; i >= 0; --i) {
    keyed.push_back(static_cast<std::byte>(key >> (8 * i)));
  }
  return fnv1a(keyed);
}

bool verify_tag(std::uint64_t key, const Bytes& data, std::uint64_t tag) {
  return keyed_tag(key, data) == tag;
}

Bytes xor_cipher(std::uint64_t key, const Bytes& data) {
  support::SplitMix64 keystream(key);
  Bytes out(data.size());
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) word = keystream.next();
    out[i] = data[i] ^ static_cast<std::byte>(word >> (8 * (i % 8)));
  }
  return out;
}

}  // namespace pdc::net
