// Bus-snooping MESI cache-coherence simulator with sharing classification.
//
// Models the "multiprocessor caches and cache coherence" unit the surveyed
// architecture courses carry (paper §III item 3). Each core owns a private
// cache; a shared bus serializes transactions. Beyond the protocol itself
// the simulator classifies every coherence miss as TRUE or FALSE sharing
// (did the missing core touch a word somebody actually wrote, or merely a
// neighbouring word of the same line?) — the diagnosis behind the padded-
// counter experiment in bench/perf_coherence.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "arch/cache.hpp"

namespace pdc::arch {

enum class MesiState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* to_string(MesiState state);

/// Protocol variant: MSI lacks the Exclusive state, so a private
/// read-then-write pays a bus upgrade that MESI's silent E->M avoids —
/// the ablation bench/perf_coherence measures.
enum class CoherenceProtocol : std::uint8_t { kMsi, kMesi };

const char* to_string(CoherenceProtocol protocol);

struct CoherenceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;              // lines fetched over the bus
  std::uint64_t coherence_misses = 0;    // misses caused by invalidations
  std::uint64_t true_sharing_misses = 0;
  std::uint64_t false_sharing_misses = 0;
  std::uint64_t bus_reads = 0;        // BusRd
  std::uint64_t bus_read_exclusive = 0;  // BusRdX
  std::uint64_t upgrades = 0;         // BusUpgr (S -> M without data fetch)
  std::uint64_t invalidations = 0;    // lines invalidated in peer caches
  std::uint64_t writebacks = 0;       // M lines flushed (eviction or snoop)
  std::uint64_t interventions = 0;    // cache-to-cache transfers

  [[nodiscard]] double miss_rate() const {
    const auto total = reads + writes;
    return total == 0 ? 0.0 : static_cast<double>(misses) / static_cast<double>(total);
  }
};

class MesiSystem {
 public:
  /// `word_bytes` is the sharing-classification granularity.
  MesiSystem(std::size_t cores, CacheConfig config, std::size_t word_bytes = 4,
             CoherenceProtocol protocol = CoherenceProtocol::kMesi);

  /// One load by `core` at byte address `address`.
  void read(std::size_t core, std::uint64_t address);

  /// One store by `core` at byte address `address`.
  void write(std::size_t core, std::uint64_t address);

  [[nodiscard]] std::size_t cores() const { return caches_.size(); }
  [[nodiscard]] const CoherenceStats& stats() const { return stats_; }

  /// Protocol state of (core, line-of-address) — kInvalid when absent.
  [[nodiscard]] MesiState state_of(std::size_t core, std::uint64_t address) const;

 private:
  struct LineMeta {
    MesiState state = MesiState::kInvalid;
    bool lost_to_invalidation = false;  // we held it, a peer's write took it
    // Words written by peers since we lost the line (classification set).
    std::set<std::uint64_t> peer_written_words;
  };

  using LineId = std::uint64_t;
  [[nodiscard]] LineId line_of(std::uint64_t address) const {
    return address / config_.line_bytes;
  }
  [[nodiscard]] std::uint64_t word_of(std::uint64_t address) const {
    return (address % config_.line_bytes) / word_bytes_;
  }

  LineMeta& meta(std::size_t core, LineId line) { return meta_[core][line]; }

  /// Invalidate peers' copies of `line` because `writer` stores `word`.
  void invalidate_peers(std::size_t writer, LineId line, std::uint64_t word);

  /// On a miss, account sharing classification for `core`.
  void classify_miss(std::size_t core, LineId line, std::uint64_t word);

  CacheConfig config_;
  std::size_t word_bytes_;
  CoherenceProtocol protocol_;
  std::vector<Cache> caches_;
  std::vector<std::map<LineId, LineMeta>> meta_;  // per core
  CoherenceStats stats_;
};

}  // namespace pdc::arch
