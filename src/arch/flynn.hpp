// Flynn's taxonomy (Table I row "Flynn's taxonomy").
#pragma once

#include <cstddef>
#include <string>

namespace pdc::arch {

enum class FlynnClass { kSisd, kSimd, kMisd, kMimd };

/// Classifies by the number of concurrent instruction and data streams.
FlynnClass classify_flynn(std::size_t instruction_streams,
                          std::size_t data_streams);

/// "SISD", "SIMD", "MISD", "MIMD".
const char* to_string(FlynnClass c);

/// One-sentence description with a canonical machine example, as a course
/// handout would phrase it.
std::string describe(FlynnClass c);

}  // namespace pdc::arch
