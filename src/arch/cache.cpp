#include "arch/cache.hpp"

namespace pdc::arch {

namespace {
bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

Cache::Cache(CacheConfig config) : config_(config) {
  PDC_CHECK_MSG(is_pow2(config_.line_bytes), "line size must be a power of two");
  PDC_CHECK(config_.size_bytes >= config_.line_bytes);
  PDC_CHECK(config_.size_bytes % config_.line_bytes == 0);
  const std::size_t total_lines = config_.size_bytes / config_.line_bytes;
  if (config_.associativity == 0 || config_.associativity > total_lines) {
    config_.associativity = total_lines;  // fully associative
  }
  PDC_CHECK_MSG(total_lines % config_.associativity == 0,
                "line count not divisible by associativity");
  sets_ = total_lines / config_.associativity;
  PDC_CHECK_MSG(is_pow2(sets_), "set count must be a power of two");
  lines_.resize(total_lines);
}

Cache::Location Cache::locate(std::uint64_t address) const {
  const std::uint64_t line = address / config_.line_bytes;
  return {static_cast<std::size_t>(line % sets_), line / sets_};
}

Cache::Line* Cache::find(const Location& loc) {
  Line* base = &lines_[loc.set * config_.associativity];
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == loc.tag) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(const Location& loc) const {
  const Line* base = &lines_[loc.set * config_.associativity];
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == loc.tag) return &base[w];
  }
  return nullptr;
}

Cache::Line& Cache::choose_victim(std::size_t set) {
  Line* base = &lines_[set * config_.associativity];
  Line* victim = base;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    if (!base[w].valid) return base[w];  // free way
    if (base[w].stamp < victim->stamp) victim = &base[w];
  }
  return *victim;
}

bool Cache::access(std::uint64_t address, bool is_write) {
  return access_detailed(address, is_write).hit;
}

Cache::AccessResult Cache::access_detailed(std::uint64_t address,
                                           bool is_write) {
  ++tick_;
  ++stats_.accesses;
  AccessResult result;
  const Location loc = locate(address);
  if (Line* line = find(loc)) {
    ++stats_.hits;
    result.hit = true;
    if (config_.replacement == Replacement::kLru) line->stamp = tick_;
    if (is_write) {
      if (config_.write_policy == WritePolicy::kWriteBackAllocate) {
        line->dirty = true;
      } else {
        ++stats_.memory_writes;  // write-through
      }
    }
    return result;
  }

  ++stats_.misses;
  if (is_write && config_.write_policy == WritePolicy::kWriteThroughNoAllocate) {
    ++stats_.memory_writes;  // no-allocate: the store bypasses the cache
    return result;
  }
  Line& victim = choose_victim(loc.set);
  if (victim.valid) {
    ++stats_.evictions;
    if (victim.dirty) ++stats_.writebacks;
    result.evicted = true;
    // Reconstruct the evicted line id from (set, tag); inverse of locate().
    result.evicted_line = victim.tag * sets_ + loc.set;
    result.evicted_dirty = victim.dirty;
  }
  victim.valid = true;
  victim.tag = loc.tag;
  victim.dirty = is_write && config_.write_policy == WritePolicy::kWriteBackAllocate;
  victim.stamp = tick_;  // both policies stamp on fill; LRU re-stamps on use
  return result;
}

bool Cache::contains(std::uint64_t address) const {
  return find(locate(address)) != nullptr;
}

bool Cache::invalidate(std::uint64_t address) {
  if (Line* line = find(locate(address))) {
    const bool was_dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    return was_dirty;
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) {
    if (line.valid && line.dirty) ++stats_.writebacks;
    line.valid = false;
    line.dirty = false;
  }
}

}  // namespace pdc::arch
