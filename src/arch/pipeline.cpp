#include "arch/pipeline.hpp"

#include "support/check.hpp"

namespace pdc::arch {

const char* to_string(BranchPredictor predictor) {
  switch (predictor) {
    case BranchPredictor::kAlwaysNotTaken: return "not-taken";
    case BranchPredictor::kAlwaysTaken: return "taken";
    case BranchPredictor::kOneBit: return "1-bit";
    case BranchPredictor::kTwoBit: return "2-bit";
  }
  return "unknown";
}

namespace {

/// Per-pc predictor state: 1-bit uses {0,1}; 2-bit a saturating counter
/// 0..3 (>=2 predicts taken), initialized weakly not-taken (1).
class PredictorState {
 public:
  explicit PredictorState(BranchPredictor kind) : kind_(kind) {}

  bool predict(std::uint64_t pc) {
    switch (kind_) {
      case BranchPredictor::kAlwaysNotTaken: return false;
      case BranchPredictor::kAlwaysTaken: return true;
      case BranchPredictor::kOneBit: {
        const auto it = last_.find(pc);
        return it != last_.end() && it->second;
      }
      case BranchPredictor::kTwoBit: {
        const auto it = counter_.find(pc);
        return it != counter_.end() && it->second >= 2;
      }
    }
    return false;
  }

  void update(std::uint64_t pc, bool taken) {
    switch (kind_) {
      case BranchPredictor::kAlwaysNotTaken:
      case BranchPredictor::kAlwaysTaken:
        return;
      case BranchPredictor::kOneBit:
        last_[pc] = taken;
        return;
      case BranchPredictor::kTwoBit: {
        auto [it, inserted] = counter_.try_emplace(pc, 1);
        int& c = it->second;
        c = taken ? std::min(3, c + 1) : std::max(0, c - 1);
        return;
      }
    }
  }

 private:
  BranchPredictor kind_;
  std::map<std::uint64_t, bool> last_;
  std::map<std::uint64_t, int> counter_;
};

}  // namespace

PipelineStats simulate_pipeline(const std::vector<TraceInstr>& trace,
                                const PipelineConfig& config) {
  PipelineStats stats;
  if (trace.empty()) return stats;

  PredictorState predictor(config.predictor);

  // writer_distance[r]: how many instructions ago register r was written,
  // and whether that writer was a load. Distances advance by 1 per issued
  // instruction and by stall bubbles.
  struct Writer {
    std::uint64_t position = 0;  // issue index of the writing instruction
    bool is_load = false;
    bool valid = false;
  };
  std::map<int, Writer> writers;

  std::uint64_t issue_index = 0;
  std::uint64_t extra_cycles = 0;  // stalls + flushes

  auto hazard_stalls = [&](int reg) -> std::uint64_t {
    if (reg < 0) return 0;
    const auto it = writers.find(reg);
    if (it == writers.end() || !it->second.valid) return 0;
    const std::uint64_t distance = issue_index - it->second.position;
    if (config.forwarding) {
      // Full forwarding: only a load's value is late (available after MEM).
      if (it->second.is_load && distance == 1) return 1;
      return 0;
    }
    // No forwarding: value available via the register file in the cycle
    // after WB; write-first/read-second gives distance-3 a free pass.
    if (distance == 1) return 2;
    if (distance == 2) return 1;
    return 0;
  };

  for (const TraceInstr& instr : trace) {
    ++stats.instructions;

    const std::uint64_t stall =
        std::max(hazard_stalls(instr.src1), hazard_stalls(instr.src2));
    if (stall > 0) {
      extra_cycles += stall;
      stats.raw_stalls += stall;
      // A stall lets older writers drift further away.
      issue_index += stall;
      if (config.forwarding) stats.load_use_stalls += stall;
    }

    if (instr.op == Op::kBranch) {
      ++stats.branches;
      const bool predicted = predictor.predict(instr.pc);
      predictor.update(instr.pc, instr.taken);
      if (predicted != instr.taken) {
        ++stats.mispredictions;
        extra_cycles += config.mispredict_penalty;
        stats.flush_cycles += config.mispredict_penalty;
        issue_index += config.mispredict_penalty;
      }
    }

    if (instr.dst >= 0) {
      writers[instr.dst] = Writer{issue_index, instr.op == Op::kLoad, true};
    }
    ++issue_index;
  }

  // Filled-pipeline time: depth + (n-1) + bubbles.
  stats.cycles = 5 + (stats.instructions - 1) + extra_cycles;
  return stats;
}

std::vector<TraceInstr> make_loop_trace(std::size_t iterations,
                                        std::size_t body_alu) {
  PDC_CHECK(iterations >= 1);
  std::vector<TraceInstr> trace;
  trace.reserve(iterations * (body_alu + 2));
  for (std::size_t i = 0; i < iterations; ++i) {
    // r1 = load; dependent ALU chain on r2; backward branch on r2.
    trace.push_back({Op::kLoad, 1, 10, -1, 100, false});
    int prev = 1;
    for (std::size_t a = 0; a < body_alu; ++a) {
      trace.push_back({Op::kAlu, 2, prev, 2, 104 + a * 4, false});
      prev = 2;
    }
    trace.push_back(
        {Op::kBranch, -1, 2, -1, 200, /*taken=*/i + 1 < iterations});
  }
  return trace;
}

}  // namespace pdc::arch
