#include "arch/flynn.hpp"

#include "support/check.hpp"

namespace pdc::arch {

FlynnClass classify_flynn(std::size_t instruction_streams,
                          std::size_t data_streams) {
  PDC_CHECK(instruction_streams >= 1);
  PDC_CHECK(data_streams >= 1);
  const bool mi = instruction_streams > 1;
  const bool md = data_streams > 1;
  if (!mi && !md) return FlynnClass::kSisd;
  if (!mi) return FlynnClass::kSimd;
  if (!md) return FlynnClass::kMisd;
  return FlynnClass::kMimd;
}

const char* to_string(FlynnClass c) {
  switch (c) {
    case FlynnClass::kSisd: return "SISD";
    case FlynnClass::kSimd: return "SIMD";
    case FlynnClass::kMisd: return "MISD";
    case FlynnClass::kMimd: return "MIMD";
  }
  return "?";
}

std::string describe(FlynnClass c) {
  switch (c) {
    case FlynnClass::kSisd:
      return "SISD: one instruction stream, one data stream — the classic "
             "uniprocessor.";
    case FlynnClass::kSimd:
      return "SIMD: one instruction stream applied to many data elements — "
             "vector units and GPU warps.";
    case FlynnClass::kMisd:
      return "MISD: many instruction streams over one data stream — rare; "
             "fault-tolerant replicated pipelines are the usual example.";
    case FlynnClass::kMimd:
      return "MIMD: many instruction streams, many data streams — "
             "multicores, clusters, and distributed systems.";
  }
  return {};
}

}  // namespace pdc::arch
