#include "arch/mesi.hpp"

namespace pdc::arch {

const char* to_string(MesiState state) {
  switch (state) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
  }
  return "?";
}

const char* to_string(CoherenceProtocol protocol) {
  return protocol == CoherenceProtocol::kMsi ? "MSI" : "MESI";
}

MesiSystem::MesiSystem(std::size_t cores, CacheConfig config,
                       std::size_t word_bytes, CoherenceProtocol protocol)
    : config_(config), word_bytes_(word_bytes), protocol_(protocol),
      meta_(cores) {
  PDC_CHECK(cores >= 1);
  PDC_CHECK(word_bytes >= 1 && word_bytes <= config.line_bytes);
  // Coherence requires write-back private caches.
  config_.write_policy = WritePolicy::kWriteBackAllocate;
  caches_.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) caches_.emplace_back(config_);
}

MesiState MesiSystem::state_of(std::size_t core, std::uint64_t address) const {
  PDC_CHECK(core < meta_.size());
  const auto it = meta_[core].find(address / config_.line_bytes);
  return it == meta_[core].end() ? MesiState::kInvalid : it->second.state;
}

void MesiSystem::classify_miss(std::size_t core, LineId line,
                               std::uint64_t word) {
  LineMeta& m = meta(core, line);
  if (!m.lost_to_invalidation) return;  // cold or capacity miss
  ++stats_.coherence_misses;
  if (m.peer_written_words.count(word) != 0) {
    ++stats_.true_sharing_misses;
  } else {
    ++stats_.false_sharing_misses;
  }
  m.lost_to_invalidation = false;
  m.peer_written_words.clear();
}

void MesiSystem::invalidate_peers(std::size_t writer, LineId line,
                                  std::uint64_t word) {
  const std::uint64_t address = line * config_.line_bytes;
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    if (c == writer) continue;
    auto it = meta_[c].find(line);
    if (it == meta_[c].end()) continue;
    LineMeta& m = it->second;
    if (m.state != MesiState::kInvalid) {
      if (m.state == MesiState::kModified) {
        ++stats_.writebacks;
        ++stats_.interventions;  // dirty data supplied to the requester
      }
      caches_[c].invalidate(address);
      m.state = MesiState::kInvalid;
      m.lost_to_invalidation = true;
      ++stats_.invalidations;
    }
    // Whether just invalidated or lost earlier, accumulate the written word
    // so the peer's next miss can be classified true/false sharing.
    if (m.lost_to_invalidation) m.peer_written_words.insert(word);
  }
}

void MesiSystem::read(std::size_t core, std::uint64_t address) {
  PDC_CHECK(core < caches_.size());
  ++stats_.reads;
  const LineId line = line_of(address);
  LineMeta& m = meta(core, line);

  if (m.state != MesiState::kInvalid) {
    ++stats_.hits;
    const bool hit = caches_[core].access(address, false);
    PDC_CHECK_MSG(hit, "meta says resident but cache missed");
    return;
  }

  // Read miss: BusRd.
  ++stats_.misses;
  ++stats_.bus_reads;
  classify_miss(core, line, word_of(address));

  bool shared = false;
  for (std::size_t c = 0; c < caches_.size(); ++c) {
    if (c == core) continue;
    auto it = meta_[c].find(line);
    if (it == meta_[c].end() || it->second.state == MesiState::kInvalid) continue;
    shared = true;
    if (it->second.state == MesiState::kModified) {
      ++stats_.writebacks;     // M owner flushes
      ++stats_.interventions;  // and supplies the data
    }
    it->second.state = MesiState::kShared;  // M/E/S all degrade to S
  }

  // MSI has no Exclusive state: a private read still lands in Shared, so
  // the later write will need a bus upgrade MESI avoids.
  m.state = (shared || protocol_ == CoherenceProtocol::kMsi)
                ? MesiState::kShared
                : MesiState::kExclusive;
  const auto result = caches_[core].access_detailed(address, false);
  PDC_CHECK(!result.hit);
  if (result.evicted) {
    if (result.evicted_dirty) ++stats_.writebacks;
    meta_[core].erase(result.evicted_line);  // capacity loss, not coherence
  }
}

void MesiSystem::write(std::size_t core, std::uint64_t address) {
  PDC_CHECK(core < caches_.size());
  ++stats_.writes;
  const LineId line = line_of(address);
  const std::uint64_t word = word_of(address);
  LineMeta& m = meta(core, line);

  switch (m.state) {
    case MesiState::kModified:
    case MesiState::kExclusive: {
      ++stats_.hits;
      m.state = MesiState::kModified;  // E -> M is a silent upgrade
      const bool hit = caches_[core].access(address, true);
      PDC_CHECK_MSG(hit, "meta says resident but cache missed");
      // Peers that lost this line earlier keep accumulating written words.
      invalidate_peers(core, line, word);
      return;
    }
    case MesiState::kShared: {
      // Data is local; only ownership must be acquired (BusUpgr).
      ++stats_.hits;
      ++stats_.upgrades;
      invalidate_peers(core, line, word);
      m.state = MesiState::kModified;
      const bool hit = caches_[core].access(address, true);
      PDC_CHECK_MSG(hit, "meta says resident but cache missed");
      return;
    }
    case MesiState::kInvalid:
      break;
  }

  // Write miss: BusRdX.
  ++stats_.misses;
  ++stats_.bus_read_exclusive;
  classify_miss(core, line, word);
  invalidate_peers(core, line, word);
  m.state = MesiState::kModified;
  const auto result = caches_[core].access_detailed(address, true);
  PDC_CHECK(!result.hit);
  if (result.evicted) {
    if (result.evicted_dirty) ++stats_.writebacks;
    meta_[core].erase(result.evicted_line);
  }
}

}  // namespace pdc::arch
