// Tomasulo dynamic-scheduling simulator, non-speculative and speculative.
//
// The AUC case study (paper §IV-B) explicitly covers "architectures based
// on dynamic scheduling such as the non-speculative and the speculative
// versions of Tomasulo's architecture". This model implements both:
//
//  - reservation stations per functional-unit class with register renaming
//    through the register-status (Qi) table, and a single CDB arbitrated
//    oldest-first (so CDB contention is a measurable effect);
//  - NON-SPECULATIVE: issue stops at every branch until it resolves;
//  - SPECULATIVE: a reorder buffer bounds the in-flight window, commit is
//    in order (1/cycle), and issue continues past predicted branches; a
//    misprediction costs the wait for resolution plus a refetch bubble
//    (wrong-path resource usage is not modelled — documented
//    simplification).
//
// The trace is the dynamic correct-path instruction stream, as in
// pipeline.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/pipeline.hpp"  // BranchPredictor

namespace pdc::arch {

enum class FpOp : std::uint8_t { kFAdd, kFMul, kFDiv, kLoad, kStore, kBranch };

const char* to_string(FpOp op);

struct FpInstr {
  FpOp op = FpOp::kFAdd;
  int dst = -1;   // destination register (< 0 for stores/branches)
  int src1 = -1;
  int src2 = -1;
  std::uint64_t pc = 0;
  bool taken = false;  // branch outcome
};

struct TomasuloConfig {
  bool speculative = false;
  std::size_t rob_entries = 16;       // speculative only
  std::size_t adder_stations = 3;     // FAdd + branch compare
  std::size_t multiplier_stations = 2;  // FMul/FDiv
  std::size_t memory_stations = 3;    // loads/stores
  std::uint32_t fadd_latency = 2;
  std::uint32_t fmul_latency = 6;
  std::uint32_t fdiv_latency = 12;
  std::uint32_t load_latency = 2;
  std::uint32_t store_latency = 1;
  std::uint32_t branch_latency = 1;
  BranchPredictor predictor = BranchPredictor::kTwoBit;
  std::uint32_t mispredict_penalty = 1;  // refetch bubble after resolution
};

struct TomasuloStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t rs_full_stall_cycles = 0;
  std::uint64_t rob_full_stall_cycles = 0;
  std::uint64_t branch_stall_cycles = 0;  // issue blocked by an unresolved branch
  std::uint64_t branches = 0;
  std::uint64_t mispredictions = 0;
  std::uint64_t cdb_conflict_cycles = 0;  // results ready but CDB busy

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

TomasuloStats simulate_tomasulo(const std::vector<FpInstr>& trace,
                                const TomasuloConfig& config = {});

/// Dynamic trace of a loop body with FP work and a data-dependent branch:
/// per iteration — load, fmul (dependent), fadd (dependent), branch taken
/// with probability `taken_bias` (deterministic pattern derived from the
/// iteration index and bias).
std::vector<FpInstr> make_fp_loop_trace(std::size_t iterations,
                                        double taken_bias);

}  // namespace pdc::arch
