// Set-associative cache simulator.
//
// The survey in the paper (§III, Table I) places "memory and caching" and
// "multicore processors" in the architecture course; this model is the
// single-core building block, reused per-core by the MESI system in
// mesi.hpp. Addresses are byte addresses; an access touches one line.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace pdc::arch {

enum class Replacement { kLru, kFifo };
enum class WritePolicy {
  kWriteBackAllocate,     // dirty lines, write-allocate on store miss
  kWriteThroughNoAllocate // stores go to memory; store misses don't allocate
};

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 4;  // 0 = fully associative
  Replacement replacement = Replacement::kLru;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;      // dirty evictions
  std::uint64_t memory_writes = 0;   // write-through traffic

  [[nodiscard]] double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) / static_cast<double>(accesses);
  }
  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) / static_cast<double>(accesses);
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Performs one access; returns true on hit.
  bool access(std::uint64_t address, bool is_write);

  /// Outcome of one access including any eviction it caused — needed by
  /// the coherence layer to keep protocol metadata in sync with residency.
  struct AccessResult {
    bool hit = false;
    bool evicted = false;
    std::uint64_t evicted_line = 0;  // line id (address / line_bytes)
    bool evicted_dirty = false;
  };
  AccessResult access_detailed(std::uint64_t address, bool is_write);

  /// True if the line containing `address` is resident.
  [[nodiscard]] bool contains(std::uint64_t address) const;

  /// Invalidates the line containing `address` if resident; returns true
  /// if a dirty line was dropped (caller accounts the writeback).
  bool invalidate(std::uint64_t address);

  /// Writes back and invalidates everything.
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

  [[nodiscard]] std::size_t num_sets() const { return sets_; }
  [[nodiscard]] std::uint64_t line_of(std::uint64_t address) const {
    return address / config_.line_bytes;
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t stamp = 0;  // LRU: last use; FIFO: fill time
  };

  struct Location {
    std::size_t set;
    std::uint64_t tag;
  };
  [[nodiscard]] Location locate(std::uint64_t address) const;
  Line* find(const Location& loc);
  [[nodiscard]] const Line* find(const Location& loc) const;
  Line& choose_victim(std::size_t set);

  CacheConfig config_;
  std::size_t sets_;
  std::vector<Line> lines_;  // sets_ × associativity, row-major
  CacheStats stats_;
  std::uint64_t tick_ = 0;
};

}  // namespace pdc::arch
