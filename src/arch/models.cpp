#include "arch/models.hpp"

#include "support/check.hpp"

namespace pdc::arch {

double amdahl_speedup(double f, std::size_t p) {
  PDC_CHECK(f >= 0.0 && f <= 1.0);
  PDC_CHECK(p >= 1);
  return 1.0 / ((1.0 - f) + f / static_cast<double>(p));
}

double amdahl_limit(double f) {
  PDC_CHECK(f >= 0.0 && f < 1.0);
  return 1.0 / (1.0 - f);
}

double gustafson_speedup(double f, std::size_t p) {
  PDC_CHECK(f >= 0.0 && f <= 1.0);
  PDC_CHECK(p >= 1);
  return (1.0 - f) + f * static_cast<double>(p);
}

double karp_flatt_serial_fraction(double speedup, std::size_t p) {
  PDC_CHECK(p >= 2);
  PDC_CHECK(speedup > 0.0);
  const double invp = 1.0 / static_cast<double>(p);
  return (1.0 / speedup - invp) / (1.0 - invp);
}

double efficiency(double speedup, std::size_t p) {
  PDC_CHECK(p >= 1);
  return speedup / static_cast<double>(p);
}

double measured_speedup(double serial_seconds, double parallel_seconds) {
  PDC_CHECK(serial_seconds >= 0.0);
  PDC_CHECK(parallel_seconds > 0.0);
  return serial_seconds / parallel_seconds;
}

}  // namespace pdc::arch
