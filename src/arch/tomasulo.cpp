#include "arch/tomasulo.hpp"

#include <map>
#include <optional>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pdc::arch {

const char* to_string(FpOp op) {
  switch (op) {
    case FpOp::kFAdd: return "fadd";
    case FpOp::kFMul: return "fmul";
    case FpOp::kFDiv: return "fdiv";
    case FpOp::kLoad: return "load";
    case FpOp::kStore: return "store";
    case FpOp::kBranch: return "branch";
  }
  return "?";
}

namespace {

enum class Unit { kAdder, kMultiplier, kMemory };

Unit unit_of(FpOp op) {
  switch (op) {
    case FpOp::kFAdd:
    case FpOp::kBranch:
      return Unit::kAdder;
    case FpOp::kFMul:
    case FpOp::kFDiv:
      return Unit::kMultiplier;
    case FpOp::kLoad:
    case FpOp::kStore:
      return Unit::kMemory;
  }
  return Unit::kAdder;
}

struct Station {
  bool busy = false;
  std::size_t instr_index = 0;   // program order, for oldest-first CDB
  FpOp op = FpOp::kFAdd;
  // Producers still owed for each operand (station id + 1; 0 = ready).
  std::size_t q1 = 0, q2 = 0;
  std::uint32_t remaining = 0;
  bool executing = false;
  bool completed = false;  // result ready, waiting for the CDB
  bool written = false;    // broadcast done (awaiting commit in spec mode)
};

// Same per-pc predictor logic as the pipeline model (duplicated locally to
// keep that detail private to each simulator).
class Predictor {
 public:
  explicit Predictor(BranchPredictor kind) : kind_(kind) {}
  bool predict(std::uint64_t pc) {
    switch (kind_) {
      case BranchPredictor::kAlwaysNotTaken: return false;
      case BranchPredictor::kAlwaysTaken: return true;
      case BranchPredictor::kOneBit: {
        const auto it = last_.find(pc);
        return it != last_.end() && it->second;
      }
      case BranchPredictor::kTwoBit: {
        const auto it = counter_.find(pc);
        return it != counter_.end() && it->second >= 2;
      }
    }
    return false;
  }
  void update(std::uint64_t pc, bool taken) {
    switch (kind_) {
      case BranchPredictor::kAlwaysNotTaken:
      case BranchPredictor::kAlwaysTaken:
        return;
      case BranchPredictor::kOneBit:
        last_[pc] = taken;
        return;
      case BranchPredictor::kTwoBit: {
        auto [it, inserted] = counter_.try_emplace(pc, 1);
        it->second = taken ? std::min(3, it->second + 1)
                           : std::max(0, it->second - 1);
        return;
      }
    }
  }

 private:
  BranchPredictor kind_;
  std::map<std::uint64_t, bool> last_;
  std::map<std::uint64_t, int> counter_;
};

}  // namespace

TomasuloStats simulate_tomasulo(const std::vector<FpInstr>& trace,
                                const TomasuloConfig& config) {
  TomasuloStats stats;
  stats.instructions = trace.size();
  if (trace.empty()) return stats;

  std::vector<Station> stations(config.adder_stations +
                                config.multiplier_stations +
                                config.memory_stations);
  auto unit_range = [&](Unit unit) -> std::pair<std::size_t, std::size_t> {
    switch (unit) {
      case Unit::kAdder: return {0, config.adder_stations};
      case Unit::kMultiplier:
        return {config.adder_stations,
                config.adder_stations + config.multiplier_stations};
      case Unit::kMemory:
        return {config.adder_stations + config.multiplier_stations,
                stations.size()};
    }
    return {0, 0};
  };

  auto latency_of = [&](FpOp op) -> std::uint32_t {
    switch (op) {
      case FpOp::kFAdd: return config.fadd_latency;
      case FpOp::kFMul: return config.fmul_latency;
      case FpOp::kFDiv: return config.fdiv_latency;
      case FpOp::kLoad: return config.load_latency;
      case FpOp::kStore: return config.store_latency;
      case FpOp::kBranch: return config.branch_latency;
    }
    return 1;
  };

  Predictor predictor(config.predictor);

  std::map<int, std::size_t> register_status;  // reg -> producing station+1
  std::size_t next_issue = 0;       // trace index
  std::size_t committed = 0;        // spec mode: in-order retirement count
  std::size_t written_total = 0;    // non-spec completion criterion
  std::size_t in_flight = 0;        // issued, not yet committed/written
  std::vector<bool> commit_ready(trace.size(), false);

  // Issue barrier: set when an unresolved branch blocks further issue
  // (every branch in non-spec mode; mispredicted branches in spec mode).
  std::optional<std::size_t> blocking_branch_station;
  std::uint64_t issue_resume_delay = 0;  // refetch bubble after mispredict

  std::uint64_t cycle = 0;
  const std::uint64_t kCycleCap = 10'000'000;

  auto done = [&] {
    return config.speculative ? committed == trace.size()
                              : written_total == trace.size();
  };

  while (!done()) {
    ++cycle;
    PDC_CHECK_MSG(cycle < kCycleCap, "tomasulo simulation did not converge");

    // ---- write result (one CDB broadcast per cycle, oldest first) ----
    std::size_t best = SIZE_MAX;
    std::size_t waiting = 0;
    for (std::size_t s = 0; s < stations.size(); ++s) {
      if (stations[s].busy && stations[s].completed && !stations[s].written) {
        ++waiting;
        if (best == SIZE_MAX ||
            stations[s].instr_index < stations[best].instr_index) {
          best = s;
        }
      }
    }
    if (waiting > 1) stats.cdb_conflict_cycles += waiting - 1;
    if (best != SIZE_MAX) {
      Station& station = stations[best];
      station.written = true;
      const FpInstr& instr = trace[station.instr_index];
      // Broadcast: satisfy consumers and the register-status table.
      for (auto& other : stations) {
        if (!other.busy) continue;
        if (other.q1 == best + 1) other.q1 = 0;
        if (other.q2 == best + 1) other.q2 = 0;
      }
      if (instr.dst >= 0) {
        auto it = register_status.find(instr.dst);
        if (it != register_status.end() && it->second == best + 1) {
          register_status.erase(it);
        }
      }
      // Branch resolution.
      if (instr.op == FpOp::kBranch && blocking_branch_station &&
          *blocking_branch_station == best) {
        blocking_branch_station.reset();
      }
      if (config.speculative) {
        commit_ready[station.instr_index] = true;
        station.busy = false;  // RS freed at write; ROB entry remains
      } else {
        station.busy = false;
        ++written_total;
        --in_flight;
      }
    }

    // ---- commit (speculative only; in order, one per cycle) ----
    if (config.speculative && committed < trace.size() &&
        commit_ready[committed]) {
      ++committed;
      --in_flight;
    }

    // ---- execute ----
    for (auto& station : stations) {
      if (!station.busy || station.completed) continue;
      if (!station.executing) {
        if (station.q1 == 0 && station.q2 == 0) {
          station.executing = true;
          station.remaining = latency_of(station.op);
        } else {
          continue;
        }
      }
      if (station.remaining > 0) --station.remaining;
      if (station.remaining == 0) station.completed = true;
    }

    // ---- issue (one instruction per cycle) ----
    if (next_issue >= trace.size()) continue;
    if (issue_resume_delay > 0) {
      --issue_resume_delay;
      stats.branch_stall_cycles++;
      continue;
    }
    if (blocking_branch_station) {
      ++stats.branch_stall_cycles;
      continue;
    }
    if (config.speculative && in_flight >= config.rob_entries) {
      ++stats.rob_full_stall_cycles;
      continue;
    }
    const FpInstr& instr = trace[next_issue];
    const auto [lo, hi] = unit_range(unit_of(instr.op));
    std::size_t free_station = SIZE_MAX;
    for (std::size_t s = lo; s < hi; ++s) {
      if (!stations[s].busy) {
        free_station = s;
        break;
      }
    }
    if (free_station == SIZE_MAX) {
      ++stats.rs_full_stall_cycles;
      continue;
    }

    Station& station = stations[free_station];
    station = Station{};
    station.busy = true;
    station.instr_index = next_issue;
    station.op = instr.op;
    auto producer_of = [&](int reg) -> std::size_t {
      if (reg < 0) return 0;
      const auto it = register_status.find(reg);
      return it == register_status.end() ? 0 : it->second;
    };
    station.q1 = producer_of(instr.src1);
    station.q2 = producer_of(instr.src2);
    if (instr.dst >= 0) register_status[instr.dst] = free_station + 1;

    if (instr.op == FpOp::kBranch) {
      ++stats.branches;
      const bool predicted = predictor.predict(instr.pc);
      predictor.update(instr.pc, instr.taken);
      const bool mispredicted = predicted != instr.taken;
      if (mispredicted) ++stats.mispredictions;
      if (!config.speculative || mispredicted) {
        // Non-speculative: always wait for resolution. Speculative: the
        // wrong path would be fetched — correct-path issue resumes after
        // resolution plus the refetch bubble.
        blocking_branch_station = free_station;
        if (config.speculative && mispredicted) {
          issue_resume_delay = config.mispredict_penalty;
        }
      }
    }
    ++next_issue;
    ++in_flight;
  }

  stats.cycles = cycle;
  return stats;
}

std::vector<FpInstr> make_fp_loop_trace(std::size_t iterations,
                                        double taken_bias) {
  PDC_CHECK(taken_bias >= 0.0 && taken_bias <= 1.0);
  support::Rng rng(0xB0B0 + static_cast<std::uint64_t>(taken_bias * 1000));
  std::vector<FpInstr> trace;
  trace.reserve(iterations * 4);
  for (std::size_t i = 0; i < iterations; ++i) {
    trace.push_back({FpOp::kLoad, 2, 1, -1, 0x10, false});
    trace.push_back({FpOp::kFMul, 3, 2, 4, 0x14, false});
    trace.push_back({FpOp::kFAdd, 5, 3, 5, 0x18, false});
    trace.push_back({FpOp::kBranch, -1, 5, -1, 0x1c, rng.bernoulli(taken_bias)});
  }
  return trace;
}

}  // namespace pdc::arch
