// Classic 5-stage in-order pipeline model (IF ID EX MEM WB).
//
// Covers the "pipelining / instruction level parallelism" rows of Table I
// and the AUC case study's architecture sequence. The simulator is
// trace-driven: it consumes the dynamic instruction stream (so loops are
// simply repeated entries with their per-iteration branch outcomes) and
// charges the standard hazard penalties:
//
//   - RAW without forwarding: 2 stalls at distance 1, 1 stall at distance 2
//     (register file writes in the first half-cycle, reads in the second);
//   - with forwarding: only the load-use case stalls (1 cycle);
//   - branches resolve in EX: a misprediction flushes the 2 younger
//     instructions already fetched.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace pdc::arch {

enum class Op : std::uint8_t { kAlu, kLoad, kStore, kBranch, kNop };

/// One dynamically executed instruction. Register numbers are small ints
/// (< 0 = unused). `pc` identifies the static instruction (predictor
/// index); `taken` is the actual branch outcome.
struct TraceInstr {
  Op op = Op::kNop;
  int dst = -1;
  int src1 = -1;
  int src2 = -1;
  std::uint64_t pc = 0;
  bool taken = false;
};

enum class BranchPredictor {
  kAlwaysNotTaken,
  kAlwaysTaken,
  kOneBit,   // last-outcome per pc
  kTwoBit,   // saturating counter per pc
};

const char* to_string(BranchPredictor predictor);

struct PipelineConfig {
  bool forwarding = true;
  BranchPredictor predictor = BranchPredictor::kTwoBit;
  std::uint32_t mispredict_penalty = 2;  // bubbles (resolve in EX)
};

struct PipelineStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t raw_stalls = 0;       // data-hazard bubble cycles
  std::uint64_t load_use_stalls = 0;  // subset of raw_stalls due to loads
  std::uint64_t branches = 0;
  std::uint64_t mispredictions = 0;
  std::uint64_t flush_cycles = 0;     // control-hazard bubbles

  [[nodiscard]] double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
  [[nodiscard]] double misprediction_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredictions) /
                               static_cast<double>(branches);
  }
};

/// Runs the trace through the pipeline model.
PipelineStats simulate_pipeline(const std::vector<TraceInstr>& trace,
                                const PipelineConfig& config = {});

/// Builds the dynamic trace of a counted loop: `body_alu` dependent ALU ops
/// and one load per iteration, closed by a backward branch taken on every
/// iteration but the last. A standard predictor/forwarding workload.
std::vector<TraceInstr> make_loop_trace(std::size_t iterations,
                                        std::size_t body_alu);

}  // namespace pdc::arch
