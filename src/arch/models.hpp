// Analytic performance models: Amdahl, Gustafson, Karp–Flatt, efficiency.
//
// "A computer organization or architecture course can incorporate Amdahl's
// law and its implication on the performance of a particular parallel
// algorithm, speedup and scalability" (paper §III item 3). These are the
// curves bench/perf_amdahl_speedup regenerates and compares against
// measured task-graph executions.
#pragma once

#include <cstddef>

namespace pdc::arch {

/// Amdahl's law: speedup on p processors when fraction `f` of the serial
/// runtime is parallelizable. f in [0,1], p >= 1.
double amdahl_speedup(double f, std::size_t p);

/// The Amdahl asymptote: lim p->inf = 1 / (1 - f). f in [0,1).
double amdahl_limit(double f);

/// Gustafson's scaled speedup: with the parallel fraction `f` measured on
/// the parallel system itself, the same wall time solves a problem
/// (1-f) + f*p times larger. f in [0,1], p >= 1.
double gustafson_speedup(double f, std::size_t p);

/// Karp–Flatt experimentally determined serial fraction from a measured
/// speedup on p > 1 processors. Rising e with p indicates overhead growth;
/// constant e indicates a genuinely serial component.
double karp_flatt_serial_fraction(double speedup, std::size_t p);

/// Parallel efficiency: speedup / p.
double efficiency(double speedup, std::size_t p);

/// Speedup from measured times.
double measured_speedup(double serial_seconds, double parallel_seconds);

}  // namespace pdc::arch
