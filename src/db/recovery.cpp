#include "db/recovery.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pdc::db {

std::uint64_t WalStore::begin() {
  const std::uint64_t txn = next_txn_++;
  log_.push_back({next_lsn_++, txn, RecordType::kBegin, {}, {}, {}});
  active_.insert(txn);
  return txn;
}

std::optional<std::string> WalStore::read(const std::string& key) const {
  if (cached_keys_.count(key)) {
    const auto it = cache_.find(key);
    if (it == cache_.end()) return std::nullopt;  // volatile deletion
    return it->second;
  }
  const auto it = stable_.find(key);
  if (it == stable_.end()) return std::nullopt;
  return it->second;
}

void WalStore::put(std::uint64_t txn, const std::string& key,
                   const std::string& value) {
  PDC_CHECK_MSG(active_.count(txn), "put() on an inactive transaction");
  const auto lock = write_locks_.find(key);
  PDC_CHECK_MSG(lock == write_locks_.end() || lock->second == txn,
                "two in-flight transactions wrote one key (2PL violation)");
  write_locks_[key] = txn;
  // WAL rule: the log record precedes any data modification.
  log_.push_back({next_lsn_++, txn, RecordType::kUpdate, key, read(key), value});
  cache_[key] = value;
  cached_keys_.insert(key);
}

void WalStore::erase(std::uint64_t txn, const std::string& key) {
  PDC_CHECK_MSG(active_.count(txn), "erase() on an inactive transaction");
  const auto lock = write_locks_.find(key);
  PDC_CHECK_MSG(lock == write_locks_.end() || lock->second == txn,
                "two in-flight transactions wrote one key (2PL violation)");
  write_locks_[key] = txn;
  log_.push_back(
      {next_lsn_++, txn, RecordType::kUpdate, key, read(key), std::nullopt});
  cache_.erase(key);
  cached_keys_.insert(key);
}

void WalStore::commit(std::uint64_t txn) {
  PDC_CHECK_MSG(active_.count(txn), "commit() on an inactive transaction");
  // Appending (and "forcing") the commit record is the durability point.
  log_.push_back({next_lsn_++, txn, RecordType::kCommit, {}, {}, {}});
  active_.erase(txn);
  for (auto it = write_locks_.begin(); it != write_locks_.end();) {
    it = it->second == txn ? write_locks_.erase(it) : std::next(it);
  }
}

void WalStore::abort(std::uint64_t txn) {
  PDC_CHECK_MSG(active_.count(txn), "abort() on an inactive transaction");
  // Undo this transaction's updates in the volatile cache, newest first,
  // logging a compensation record (CLR) for each so recovery's
  // repeat-history redo reproduces the rollback too (ARIES-style; without
  // CLRs a page stolen between update and abort would stay dirty forever).
  struct Compensation {
    std::string key;
    std::optional<std::string> restore;
  };
  std::vector<Compensation> compensations;
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->txn != txn || it->type != RecordType::kUpdate) continue;
    compensations.push_back({it->key, it->before});
  }
  for (const Compensation& clr : compensations) {
    log_.push_back({next_lsn_++, txn, RecordType::kUpdate, clr.key,
                    read(clr.key), clr.restore});
    apply(cache_, clr.key, clr.restore);
    cached_keys_.insert(clr.key);
  }
  log_.push_back({next_lsn_++, txn, RecordType::kAbort, {}, {}, {}});
  active_.erase(txn);
  for (auto it = write_locks_.begin(); it != write_locks_.end();) {
    it = it->second == txn ? write_locks_.erase(it) : std::next(it);
  }
}

void WalStore::flush_page(const std::string& key) {
  if (!cached_keys_.count(key)) return;  // nothing volatile to steal
  const auto it = cache_.find(key);
  apply(stable_, key,
        it == cache_.end() ? std::nullopt : std::optional<std::string>(it->second));
}

void WalStore::crash() {
  cache_.clear();
  cached_keys_.clear();
  active_.clear();
  write_locks_.clear();
}

WalStore::RecoveryStats WalStore::recover() {
  RecoveryStats stats;
  crash();  // recovery starts from stable state only

  // Analysis: a transaction is RESOLVED if its fate record (commit or
  // abort-with-CLRs) is in the log; unresolved updaters are losers.
  std::set<std::uint64_t> committed;
  std::set<std::uint64_t> resolved;
  std::set<std::uint64_t> updaters;
  for (const LogRecord& record : log_) {
    if (record.type == RecordType::kCommit) {
      committed.insert(record.txn);
      resolved.insert(record.txn);
    }
    if (record.type == RecordType::kAbort) resolved.insert(record.txn);
    if (record.type == RecordType::kUpdate) updaters.insert(record.txn);
  }
  stats.committed_txns = committed.size();

  // Redo: repeat history — ALL updates (including losers' and CLRs) in LSN
  // order, so stable pages reach exactly the pre-crash logged state.
  for (const LogRecord& record : log_) {
    if (record.type != RecordType::kUpdate) continue;
    apply(stable_, record.key, record.after);
    ++stats.redone;
  }

  // Undo: roll back unresolved losers, newest update first. (2PL means a
  // loser held its write locks until the crash, so its updates are the
  // final ones on their keys; backward before-images are therefore exact.)
  // Each undo is itself LOGGED as a compensation record and the loser is
  // closed with an abort record — otherwise a later recovery's
  // repeat-history redo would replay the loser's updates and re-undo them
  // with by-then-stale images, clobbering younger committed data.
  struct PendingClr {
    std::uint64_t txn;
    std::string key;
    std::optional<std::string> current;
    std::optional<std::string> restore;
  };
  std::vector<PendingClr> clrs;
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->type != RecordType::kUpdate || resolved.count(it->txn)) continue;
    const auto current_it = stable_.find(it->key);
    clrs.push_back({it->txn, it->key,
                    current_it == stable_.end()
                        ? std::nullopt
                        : std::optional<std::string>(current_it->second),
                    it->before});
    apply(stable_, it->key, it->before);
    ++stats.undone;
  }
  for (const PendingClr& clr : clrs) {
    log_.push_back({next_lsn_++, clr.txn, RecordType::kUpdate, clr.key,
                    clr.current, clr.restore});
  }
  for (std::uint64_t txn : updaters) {
    if (!resolved.count(txn)) {
      ++stats.losers;
      log_.push_back({next_lsn_++, txn, RecordType::kAbort, {}, {}, {}});
    }
  }
  return stats;
}

void WalStore::apply(std::map<std::string, std::string>& target,
                     const std::string& key,
                     const std::optional<std::string>& value) {
  if (value.has_value()) {
    target[key] = *value;
  } else {
    target.erase(key);
  }
}

}  // namespace pdc::db
