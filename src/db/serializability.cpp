#include "db/serializability.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace pdc::db {

std::vector<std::pair<std::size_t, std::size_t>> precedence_edges(
    const Schedule& schedule) {
  std::set<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    for (std::size_t j = i + 1; j < schedule.size(); ++j) {
      const auto& a = schedule[i];
      const auto& b = schedule[j];
      if (a.txn == b.txn || a.key != b.key) continue;
      if (a.type == OpType::kWrite || b.type == OpType::kWrite) {
        edges.insert({a.txn, b.txn});
      }
    }
  }
  return {edges.begin(), edges.end()};
}

namespace {

/// Kahn topological sort over the precedence graph; nullopt on a cycle.
std::optional<std::vector<std::size_t>> topo_sort(
    const std::set<std::size_t>& nodes,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  std::map<std::size_t, std::size_t> in_degree;
  std::map<std::size_t, std::vector<std::size_t>> out;
  for (std::size_t node : nodes) in_degree[node] = 0;
  for (const auto& [from, to] : edges) {
    out[from].push_back(to);
    ++in_degree[to];
  }
  std::vector<std::size_t> ready;
  for (const auto& [node, degree] : in_degree) {
    if (degree == 0) ready.push_back(node);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    // Smallest id first: deterministic output.
    const auto it = std::min_element(ready.begin(), ready.end());
    const std::size_t node = *it;
    ready.erase(it);
    order.push_back(node);
    for (std::size_t next : out[node]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != nodes.size()) return std::nullopt;
  return order;
}

}  // namespace

bool conflict_serializable(const Schedule& schedule) {
  return serialization_order(schedule).has_value();
}

std::optional<std::vector<std::size_t>> serialization_order(
    const Schedule& schedule) {
  std::set<std::size_t> nodes;
  for (const auto& op : schedule) nodes.insert(op.txn);
  return topo_sort(nodes, precedence_edges(schedule));
}

}  // namespace pdc::db
