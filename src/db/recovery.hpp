// Write-ahead logging and crash recovery (undo/redo).
//
// The durability half of the DB course's transactions unit: a STEAL /
// NO-FORCE buffer manager (dirty pages may hit stable storage before
// commit; commit does not force data pages) made safe by a write-ahead
// log. Crash + recover follows the textbook three phases: analysis (who
// committed?), redo (repeat history for committed work), undo (roll back
// stolen uncommitted writes). Tests assert the two invariants any
// schedule of puts/flushes/crashes must keep: committed data survives,
// uncommitted data never becomes visible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pdc::db {

/// A recoverable key-value store with an explicit crash button.
class WalStore {
 public:
  enum class RecordType : std::uint8_t { kBegin, kUpdate, kCommit, kAbort };

  struct LogRecord {
    std::uint64_t lsn = 0;
    std::uint64_t txn = 0;
    RecordType type = RecordType::kBegin;
    std::string key;
    std::optional<std::string> before;  // undo image
    std::optional<std::string> after;   // redo image (nullopt = erase)
  };

  struct RecoveryStats {
    std::size_t committed_txns = 0;
    std::size_t losers = 0;        // in-flight transactions rolled back
    std::size_t redone = 0;        // update records replayed
    std::size_t undone = 0;        // update records reverted
  };

  WalStore() = default;

  /// Starts a transaction (logged).
  std::uint64_t begin();

  /// Transactional write: logs the update (WAL rule: log before data),
  /// then applies it to the volatile cache.
  void put(std::uint64_t txn, const std::string& key, const std::string& value);

  /// Transactional delete.
  void erase(std::uint64_t txn, const std::string& key);

  /// Commit: the commit record reaching the log IS durability (no-force).
  void commit(std::uint64_t txn);

  /// Clean abort (no crash): undoes via before-images, logs kAbort.
  void abort(std::uint64_t txn);

  /// STEAL: flushes the volatile value of `key` to stable data pages right
  /// now, regardless of the owning transaction's fate. The reason undo
  /// exists.
  void flush_page(const std::string& key);

  /// Power failure: volatile cache and active-transaction table vanish;
  /// the log and stable pages survive.
  void crash();

  /// Restart recovery: analysis + redo committed + undo losers.
  RecoveryStats recover();

  /// Read through the cache (normal operation). Sees only the caller's
  /// own uncommitted writes in this simplified single-version model.
  [[nodiscard]] std::optional<std::string> read(const std::string& key) const;

  [[nodiscard]] const std::vector<LogRecord>& log() const { return log_; }
  [[nodiscard]] bool in_doubt(std::uint64_t txn) const {
    return active_.count(txn) > 0;
  }

 private:
  void apply(std::map<std::string, std::string>& target, const std::string& key,
             const std::optional<std::string>& value);

  // Stable storage (survives crash()).
  std::vector<LogRecord> log_;
  std::map<std::string, std::string> stable_;

  // Volatile state (lost at crash()).
  std::map<std::string, std::string> cache_;
  std::set<std::string> cached_keys_;  // keys whose cache entry overrides
                                       // stable (incl. deletions)
  std::set<std::uint64_t> active_;
  // Strict-2PL discipline enforced structurally: one writer per key at a
  // time (otherwise redo/undo images could interleave incorrectly —
  // PDC_CHECK fires instead of silently corrupting).
  std::map<std::string, std::uint64_t> write_locks_;
  std::uint64_t next_txn_ = 1;
  std::uint64_t next_lsn_ = 1;
};

}  // namespace pdc::db
