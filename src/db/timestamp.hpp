// Basic timestamp-ordering (T/O) concurrency control.
//
// The optimistic counterpart to 2PL for the scheduler comparison in
// bench/perf_txn_sched: no locks, no deadlocks, but stale operations abort.
// Transactions are timestamped by arrival (txn id); each key remembers the
// largest read/write timestamps it served. The optional Thomas write rule
// silently skips obsolete writes instead of aborting.
#pragma once

#include <cstdint>

#include "db/serializability.hpp"

namespace pdc::db {

struct ToStats {
  std::size_t transactions = 0;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t operations_executed = 0;
  std::size_t thomas_skips = 0;

  [[nodiscard]] double abort_rate() const {
    return transactions == 0
               ? 0.0
               : static_cast<double>(aborted) / static_cast<double>(transactions);
  }
};

/// Executes `schedule` (operations in arrival order, timestamp = txn id)
/// under basic T/O. A transaction aborts at its first stale operation; its
/// later operations are ignored. No restarts are simulated — the abort
/// count is the figure of interest.
ToStats run_timestamp_ordering(const Schedule& schedule,
                               bool thomas_write_rule = false);

}  // namespace pdc::db
