#include "db/lock_manager.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace pdc::db {

using support::Status;
using support::StatusCode;

bool LockManager::grantable(const KeyLock& entry, TxnId txn, LockMode mode) {
  if (mode == LockMode::kShared) {
    return !entry.has_exclusive || entry.exclusive_owner == txn;
  }
  // Exclusive: sole ownership required; an S->X upgrade is grantable when
  // the requester is the only sharer.
  if (entry.has_exclusive) return entry.exclusive_owner == txn;
  if (entry.sharers.empty()) return true;
  return entry.sharers.size() == 1 && entry.sharers.count(txn) == 1;
}

std::vector<TxnId> LockManager::conflicting_holders(const KeyLock& entry,
                                                    TxnId txn, LockMode mode) {
  std::vector<TxnId> holders;
  if (entry.has_exclusive && entry.exclusive_owner != txn) {
    holders.push_back(entry.exclusive_owner);
  }
  if (mode == LockMode::kExclusive) {
    for (TxnId sharer : entry.sharers) {
      if (sharer != txn) holders.push_back(sharer);
    }
  }
  return holders;
}

TxnId LockManager::detect_and_resolve_locked(TxnId start) {
  // DFS from `start` over waiting_for_ edges looking for a path back to
  // `start`; the youngest transaction on that path is sacrificed.
  std::vector<TxnId> path{start};
  std::set<TxnId> visited{start};
  TxnId found_victim = 0;

  std::function<bool(TxnId)> dfs = [&](TxnId node) -> bool {
    const auto it = waiting_for_.find(node);
    if (it == waiting_for_.end()) return false;
    for (TxnId next : it->second) {
      if (next == start) return true;  // cycle closed
      if (visited.insert(next).second) {
        path.push_back(next);
        if (dfs(next)) return true;
        path.pop_back();
      }
    }
    return false;
  };

  if (!dfs(start)) return 0;
  found_victim = *std::max_element(path.begin(), path.end());
  victims_.insert(found_victim);
  ++deadlocks_;
  return found_victim;
}

Status LockManager::lock(TxnId txn, const std::string& key, LockMode mode) {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (victims_.erase(txn) > 0) {
      waiting_for_.erase(txn);
      return {StatusCode::kAborted, "chosen as deadlock victim"};
    }
    KeyLock& entry = keys_[key];
    if (grantable(entry, txn, mode)) {
      waiting_for_.erase(txn);
      if (mode == LockMode::kShared) {
        if (!entry.has_exclusive) {
          entry.sharers.insert(txn);
        }
        // else: txn already owns X, which subsumes S.
      } else {
        entry.sharers.erase(txn);  // upgrade consumes the S lock
        entry.has_exclusive = true;
        entry.exclusive_owner = txn;
      }
      return Status::ok();
    }

    // Record wait edges, look for a cycle, then sleep.
    waiting_for_[txn] = conflicting_holders(entry, txn, mode);
    const TxnId victim = detect_and_resolve_locked(txn);
    if (victim == txn) {
      victims_.erase(txn);
      waiting_for_.erase(txn);
      return {StatusCode::kAborted, "chosen as deadlock victim"};
    }
    if (victim != 0) {
      changed_.notify_all();  // wake the victim so it can observe its fate
    }
    changed_.wait(lock);
  }
}

void LockManager::unlock_all(TxnId txn) {
  std::unique_lock lock(mutex_);
  for (auto it = keys_.begin(); it != keys_.end();) {
    KeyLock& entry = it->second;
    entry.sharers.erase(txn);
    if (entry.has_exclusive && entry.exclusive_owner == txn) {
      entry.has_exclusive = false;
      entry.exclusive_owner = 0;
    }
    if (entry.sharers.empty() && !entry.has_exclusive) {
      it = keys_.erase(it);
    } else {
      ++it;
    }
  }
  waiting_for_.erase(txn);
  victims_.erase(txn);
  lock.unlock();
  changed_.notify_all();
}

std::uint64_t LockManager::deadlocks_detected() const {
  std::scoped_lock lock(mutex_);
  return deadlocks_;
}

bool LockManager::holds(TxnId txn, const std::string& key) const {
  std::scoped_lock lock(mutex_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) return false;
  return it->second.sharers.count(txn) > 0 ||
         (it->second.has_exclusive && it->second.exclusive_owner == txn);
}

}  // namespace pdc::db
