#include "db/workload.hpp"

#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace pdc::db {

namespace {
std::string key_name(std::size_t k) { return "k" + std::to_string(k); }
}  // namespace

WorkloadResult run_2pl_workload(Database& db, const WorkloadConfig& config) {
  PDC_CHECK(config.clients >= 1);
  WorkloadResult result;
  std::atomic<std::uint64_t> committed{0};
  std::atomic<std::uint64_t> deadlock_aborts{0};
  support::Stopwatch clock;

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      support::Rng rng(config.seed + c * 1000003);
      const support::ZipfDistribution zipf(config.keys, config.zipf_skew);
      for (std::size_t t = 0; t < config.txns_per_client; ++t) {
        // Pre-draw the op list so a retry re-executes the same logical txn.
        struct PlannedOp {
          bool write;
          std::size_t key;
        };
        std::vector<PlannedOp> ops(config.ops_per_txn);
        for (auto& op : ops) {
          op.write = rng.bernoulli(config.write_fraction);
          op.key = zipf(rng);
        }
        for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
          Txn txn = db.begin();
          bool victim = false;
          for (const auto& op : ops) {
            if (config.yield_between_ops) std::this_thread::yield();
            if (op.write) {
              const auto status =
                  txn.put(key_name(op.key), std::to_string(txn.id()));
              if (!status.is_ok()) {
                victim = true;
                break;
              }
            } else {
              const auto value = txn.get(key_name(op.key));
              if (!value.is_ok() &&
                  value.status().code() == support::StatusCode::kAborted) {
                victim = true;
                break;
              }
            }
          }
          if (!victim) {
            PDC_CHECK(txn.commit().is_ok());
            ++committed;
            break;
          }
          ++deadlock_aborts;  // txn already rolled back; retry
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  result.seconds = clock.elapsed_seconds();
  result.committed = committed.load();
  result.deadlock_aborts = deadlock_aborts.load();
  return result;
}

Schedule make_schedule(const WorkloadConfig& config) {
  // Per-client op streams, interleaved round-robin one op at a time — a
  // dense interleaving that stresses T/O the way concurrency stresses 2PL.
  struct Stream {
    std::size_t txn;
    std::vector<ScheduleOp> ops;
  };
  std::vector<Stream> streams;
  std::size_t txn_id = 1;
  for (std::size_t c = 0; c < config.clients; ++c) {
    support::Rng rng(config.seed + c * 1000003);
    const support::ZipfDistribution zipf(config.keys, config.zipf_skew);
    for (std::size_t t = 0; t < config.txns_per_client; ++t) {
      Stream stream;
      stream.txn = txn_id++;
      for (std::size_t o = 0; o < config.ops_per_txn; ++o) {
        stream.ops.push_back(
            {stream.txn,
             rng.bernoulli(config.write_fraction) ? OpType::kWrite : OpType::kRead,
             key_name(zipf(rng))});
      }
      streams.push_back(std::move(stream));
    }
  }

  Schedule schedule;
  // Interleave `clients` concurrent transactions at a time.
  std::size_t window_start = 0;
  while (window_start < streams.size()) {
    const std::size_t window_end =
        std::min(window_start + config.clients, streams.size());
    for (std::size_t o = 0; o < config.ops_per_txn; ++o) {
      for (std::size_t s = window_start; s < window_end; ++s) {
        schedule.push_back(streams[s].ops[o]);
      }
    }
    window_start = window_end;
  }
  return schedule;
}

}  // namespace pdc::db
