// Key-granularity lock manager with deadlock detection.
//
// Table I places "transactions processing", "scheduling concurrent
// transactions", "transaction locks", and "deadlocks" in the database
// course. This lock manager grants shared/exclusive locks per key,
// supports S->X upgrade, and — before any requester sleeps — runs cycle
// detection on the waits-for graph, aborting the youngest transaction of
// the cycle (the victim observes kAborted from its pending lock call).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pdc::db {

using TxnId = std::uint64_t;

enum class LockMode : std::uint8_t { kShared, kExclusive };

class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Acquires (or upgrades) a lock for `txn` on `key`. Blocks while
  /// conflicting. Returns kAborted when this transaction was chosen as a
  /// deadlock victim while waiting (its locks remain; the caller's abort
  /// path must call unlock_all).
  support::Status lock(TxnId txn, const std::string& key, LockMode mode);

  /// Releases every lock held by `txn` and wakes waiters (strict 2PL
  /// release at commit/abort).
  void unlock_all(TxnId txn);

  /// Deadlock victims chosen so far.
  [[nodiscard]] std::uint64_t deadlocks_detected() const;

  /// Diagnostic: does `txn` hold a lock on `key` (any mode)?
  [[nodiscard]] bool holds(TxnId txn, const std::string& key) const;

 private:
  struct KeyLock {
    std::set<TxnId> sharers;
    TxnId exclusive_owner = 0;
    bool has_exclusive = false;
  };

  /// True when `txn` may take `mode` on `entry` right now.
  static bool grantable(const KeyLock& entry, TxnId txn, LockMode mode);

  /// Transactions currently blocking `txn` on `entry` (the wait edges).
  static std::vector<TxnId> conflicting_holders(const KeyLock& entry,
                                                TxnId txn, LockMode mode);

  /// Runs cycle detection from `txn`; if a cycle exists, aborts the
  /// youngest (largest-id) transaction on it and returns it. Caller holds
  /// mutex_.
  TxnId detect_and_resolve_locked(TxnId txn);

  mutable std::mutex mutex_;
  std::condition_variable changed_;
  std::map<std::string, KeyLock> keys_;
  // waiting_for_[t]: the holders t is currently blocked on.
  std::map<TxnId, std::vector<TxnId>> waiting_for_;
  std::set<TxnId> victims_;  // chosen, not yet observed
  std::uint64_t deadlocks_ = 0;
};

}  // namespace pdc::db
