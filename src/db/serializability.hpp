// Conflict-serializability analysis of transaction schedules.
//
// The theory half of the DB course's concurrency unit: a schedule is
// conflict-serializable iff its precedence graph is acyclic; the
// topological order of that graph is an equivalent serial order. Used in
// tests to verify that every schedule strict 2PL produces is serializable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pdc::db {

enum class OpType : std::uint8_t { kRead, kWrite };

struct ScheduleOp {
  std::size_t txn = 0;
  OpType type = OpType::kRead;
  std::string key;
};

using Schedule = std::vector<ScheduleOp>;

/// Precedence (conflict) edges: (a, b) when some operation of `a` conflicts
/// with a LATER operation of `b` (same key, at least one write, different
/// transactions). Deduplicated.
std::vector<std::pair<std::size_t, std::size_t>> precedence_edges(
    const Schedule& schedule);

/// True iff the precedence graph is acyclic.
bool conflict_serializable(const Schedule& schedule);

/// An equivalent serial order of transaction ids when one exists.
std::optional<std::vector<std::size_t>> serialization_order(
    const Schedule& schedule);

}  // namespace pdc::db
