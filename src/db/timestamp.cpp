#include "db/timestamp.hpp"

#include <map>
#include <set>
#include <string>

namespace pdc::db {

ToStats run_timestamp_ordering(const Schedule& schedule,
                               bool thomas_write_rule) {
  ToStats stats;
  struct KeyStamps {
    std::size_t read_ts = 0;   // 0 = never; txn ids start at their own scale
    std::size_t write_ts = 0;
    bool read_seen = false;
    bool write_seen = false;
  };
  std::map<std::string, KeyStamps> keys;
  std::set<std::size_t> seen, dead;

  for (const auto& op : schedule) {
    seen.insert(op.txn);
    if (dead.count(op.txn)) continue;  // already aborted: ops ignored
    KeyStamps& k = keys[op.key];
    const std::size_t ts = op.txn;

    if (op.type == OpType::kRead) {
      if (k.write_seen && ts < k.write_ts) {
        dead.insert(op.txn);  // reading a value from its future
        continue;
      }
      k.read_seen = true;
      k.read_ts = std::max(k.read_ts, ts);
    } else {
      if (k.read_seen && ts < k.read_ts) {
        dead.insert(op.txn);  // a younger txn already read around this write
        continue;
      }
      if (k.write_seen && ts < k.write_ts) {
        if (thomas_write_rule) {
          ++stats.thomas_skips;  // obsolete write: skip, don't abort
          ++stats.operations_executed;
          continue;
        }
        dead.insert(op.txn);
        continue;
      }
      k.write_seen = true;
      k.write_ts = std::max(k.write_ts, ts);
    }
    ++stats.operations_executed;
  }

  stats.transactions = seen.size();
  stats.aborted = dead.size();
  stats.committed = stats.transactions - stats.aborted;
  return stats;
}

}  // namespace pdc::db
