#include "db/transaction.hpp"

#include <set>

#include "support/check.hpp"

namespace pdc::db {

using support::Status;
using support::StatusCode;

Txn::Txn(Txn&& other) noexcept
    : db_(other.db_), id_(other.id_), active_(other.active_),
      undo_(std::move(other.undo_)) {
  other.active_ = false;
}

Txn::~Txn() {
  if (active_) abort();
}

Status Txn::on_lock_failure(Status status) {
  if (status.code() == StatusCode::kAborted) {
    ++db_->deadlock_aborts_;
    abort();
  }
  return status;
}

support::Result<std::string> Txn::get(const std::string& key) {
  PDC_CHECK_MSG(active_, "get() on a finished transaction");
  if (auto status = db_->locks_.lock(id_, key, LockMode::kShared);
      !status.is_ok()) {
    return on_lock_failure(status);
  }
  db_->log_op(id_, OpType::kRead, key);
  std::scoped_lock lock(db_->data_mutex_);
  const auto it = db_->data_.find(key);
  if (it == db_->data_.end()) {
    return Status{StatusCode::kNotFound, "no value for '" + key + "'"};
  }
  return it->second;
}

Status Txn::put(const std::string& key, const std::string& value) {
  PDC_CHECK_MSG(active_, "put() on a finished transaction");
  if (auto status = db_->locks_.lock(id_, key, LockMode::kExclusive);
      !status.is_ok()) {
    return on_lock_failure(status);
  }
  db_->log_op(id_, OpType::kWrite, key);
  std::scoped_lock lock(db_->data_mutex_);
  const auto it = db_->data_.find(key);
  undo_.push_back({key, it == db_->data_.end()
                            ? std::nullopt
                            : std::optional<std::string>(it->second)});
  db_->data_[key] = value;
  return Status::ok();
}

Status Txn::erase(const std::string& key) {
  PDC_CHECK_MSG(active_, "erase() on a finished transaction");
  if (auto status = db_->locks_.lock(id_, key, LockMode::kExclusive);
      !status.is_ok()) {
    return on_lock_failure(status);
  }
  db_->log_op(id_, OpType::kWrite, key);
  std::scoped_lock lock(db_->data_mutex_);
  const auto it = db_->data_.find(key);
  if (it == db_->data_.end()) return Status::ok();  // idempotent
  undo_.push_back({key, it->second});
  db_->data_.erase(it);
  return Status::ok();
}

Status Txn::commit() {
  PDC_CHECK_MSG(active_, "commit() on a finished transaction");
  active_ = false;
  undo_.clear();
  db_->log_commit(id_);
  db_->locks_.unlock_all(id_);
  ++db_->committed_;
  return Status::ok();
}

void Txn::abort() {
  PDC_CHECK_MSG(active_, "abort() on a finished transaction");
  active_ = false;
  {
    std::scoped_lock lock(db_->data_mutex_);
    // Undo newest-first so repeated writes to one key restore correctly.
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      if (it->previous.has_value()) {
        db_->data_[it->key] = *it->previous;
      } else {
        db_->data_.erase(it->key);
      }
    }
  }
  undo_.clear();
  db_->locks_.unlock_all(id_);
  ++db_->aborted_;
}

Txn Database::begin() { return Txn(this, next_txn_.fetch_add(1)); }

std::optional<std::string> Database::peek(const std::string& key) const {
  std::scoped_lock lock(data_mutex_);
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void Database::record_history(bool enabled) {
  std::scoped_lock lock(history_mutex_);
  history_enabled_ = enabled;
  if (enabled) {
    history_.clear();
    history_committed_.clear();
  }
}

void Database::log_op(TxnId txn, OpType type, const std::string& key) {
  std::scoped_lock lock(history_mutex_);
  if (!history_enabled_) return;
  history_.push_back({static_cast<std::size_t>(txn), type, key});
}

void Database::log_commit(TxnId txn) {
  std::scoped_lock lock(history_mutex_);
  if (!history_enabled_) return;
  history_committed_.push_back(txn);
}

Schedule Database::committed_history() const {
  std::scoped_lock lock(history_mutex_);
  std::set<std::size_t> committed(history_committed_.begin(),
                                  history_committed_.end());
  Schedule filtered;
  for (const ScheduleOp& op : history_) {
    if (committed.count(op.txn)) filtered.push_back(op);
  }
  return filtered;
}

Database::Stats Database::stats() const {
  Stats stats;
  stats.begun = next_txn_.load() - 1;
  stats.committed = committed_.load();
  stats.aborted = aborted_.load();
  stats.deadlock_aborts = deadlock_aborts_.load();
  return stats;
}

}  // namespace pdc::db
