// Transactional key-value database with strict two-phase locking.
//
// The storage engine behind the Table-I database-course topics: begin/
// get/put/commit/abort with S/X locks held to transaction end (strict
// 2PL), undo-based rollback, and deadlock-victim aborts surfaced as
// kAborted statuses the caller retries — the structure of every
// transactional workload in bench/perf_txn_sched.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "db/lock_manager.hpp"
#include "db/serializability.hpp"
#include "support/status.hpp"

namespace pdc::db {

class Database;

/// Handle for one transaction. Move-only; must end in commit() or abort()
/// (destruction of an active transaction aborts it).
class Txn {
 public:
  Txn(Txn&& other) noexcept;
  Txn& operator=(Txn&&) = delete;
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;
  ~Txn();

  [[nodiscard]] TxnId id() const { return id_; }
  [[nodiscard]] bool active() const { return active_; }

  /// Reads `key` under a shared lock (kNotFound when absent; kAborted when
  /// this transaction became a deadlock victim — it is rolled back).
  support::Result<std::string> get(const std::string& key);

  /// Writes `key` under an exclusive lock; kAborted as above.
  support::Status put(const std::string& key, const std::string& value);

  /// Deletes `key` under an exclusive lock.
  support::Status erase(const std::string& key);

  /// Commits: publishes writes (already in place) and releases all locks.
  support::Status commit();

  /// Rolls back every write and releases all locks.
  void abort();

 private:
  friend class Database;
  Txn(Database* db, TxnId id) : db_(db), id_(id) {}

  /// Applies deadlock-victim handling to a failed lock acquisition.
  support::Status on_lock_failure(support::Status status);

  struct UndoEntry {
    std::string key;
    std::optional<std::string> previous;  // nullopt: key did not exist
  };

  Database* db_;
  TxnId id_;
  bool active_ = true;
  std::vector<UndoEntry> undo_;
};

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Starts a new transaction.
  Txn begin();

  /// Non-transactional read of committed state (test/diagnostic use).
  [[nodiscard]] std::optional<std::string> peek(const std::string& key) const;

  struct Stats {
    std::uint64_t begun = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t deadlock_aborts = 0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const LockManager& locks() const { return locks_; }

  /// Enables execution-history recording: every get/put/erase is logged in
  /// real interleaved order. Used to *verify* the scheduler: the history
  /// restricted to committed transactions must be conflict-serializable
  /// (strict 2PL guarantees it; db_test asserts it property-style).
  void record_history(bool enabled);

  /// The recorded schedule, restricted to transactions that committed.
  [[nodiscard]] Schedule committed_history() const;

 private:
  friend class Txn;

  mutable std::mutex data_mutex_;  // guards map structure only; key access
                                   // is serialized by the lock manager
  std::map<std::string, std::string> data_;

  void log_op(TxnId txn, OpType type, const std::string& key);
  void log_commit(TxnId txn);

  LockManager locks_;
  std::atomic<TxnId> next_txn_{1};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> deadlock_aborts_{0};

  mutable std::mutex history_mutex_;
  bool history_enabled_ = false;
  Schedule history_;
  std::vector<TxnId> history_committed_;
};

}  // namespace pdc::db
