// Transactional workload generation and execution harness.
//
// Drives the Database with a configurable OLTP-shaped workload (key count,
// Zipf skew, transaction length, write fraction, client threads); also
// generates plain Schedules for the T/O scheduler and serializability
// analysis, so both schedulers run the *same* logical workloads in
// bench/perf_txn_sched.
#pragma once

#include <cstdint>

#include "db/serializability.hpp"
#include "db/transaction.hpp"

namespace pdc::db {

struct WorkloadConfig {
  std::size_t clients = 4;          // concurrent worker threads
  std::size_t txns_per_client = 100;
  std::size_t keys = 64;            // keyspace size
  double zipf_skew = 0.0;           // 0 = uniform; higher = more contention
  std::size_t ops_per_txn = 4;
  double write_fraction = 0.5;
  std::size_t max_attempts = 64;    // retries after deadlock aborts
  std::uint64_t seed = 42;
  /// Yield the OS scheduler between operations: forces real interleaving
  /// on few-core hosts so lock contention and deadlocks actually manifest.
  bool yield_between_ops = false;
};

struct WorkloadResult {
  std::uint64_t committed = 0;
  std::uint64_t deadlock_aborts = 0;  // total victim events (before retry)
  double seconds = 0.0;

  [[nodiscard]] double throughput() const {
    return seconds <= 0.0 ? 0.0 : static_cast<double>(committed) / seconds;
  }
  [[nodiscard]] double abort_ratio() const {
    const auto attempts = committed + deadlock_aborts;
    return attempts == 0
               ? 0.0
               : static_cast<double>(deadlock_aborts) / static_cast<double>(attempts);
  }
};

/// Runs the workload against `db` with strict-2PL transactions; deadlock
/// victims retry (fresh transaction) up to max_attempts.
WorkloadResult run_2pl_workload(Database& db, const WorkloadConfig& config);

/// Generates the same shape of workload as one interleaved Schedule for
/// the T/O scheduler (round-robin interleaving of the clients' ops).
Schedule make_schedule(const WorkloadConfig& config);

}  // namespace pdc::db
